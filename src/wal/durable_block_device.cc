#include "wal/durable_block_device.h"

#include <algorithm>
#include <cstring>

#include "io/file_block_device.h"

namespace vem {

DurableBlockDevice::DurableBlockDevice(BlockDevice* inner, WalManager* wal)
    : inner_(inner), wal_(wal) {
  if (wal_ == nullptr) return;
  if (!wal_->valid()) {
    init_status_ = wal_->status();
    return;
  }
  next_id_ = inner_->num_allocated();
  live_blocks_ = next_id_;
  if (wal_->device()->num_allocated() > 0) {
    // A prior incarnation left a log: redo its committed history into
    // the data device, then start a fresh log.
    init_status_ = RecoverWal(wal_, inner_, &recovery_);
    if (!init_status_.ok()) return;
    next_id_ = recovery_.next_block_id;
    free_list_ = recovery_.free_list;
    live_blocks_ = next_id_ - free_list_.size();
  }
  std::lock_guard<std::mutex> lk(mu_);
  init_status_ = WriteCheckpointLocked();
}

DurableBlockDevice::~DurableBlockDevice() = default;

size_t DurableBlockDevice::block_size() const { return inner_->block_size(); }

Status DurableBlockDevice::WriteCheckpointLocked() {
  std::vector<char> map = wal::EncodeAllocMap(next_id_, free_list_);
  uint64_t lsn = 0;
  VEM_RETURN_IF_ERROR(wal_->Append(wal::RecordType::kCheckpoint, 0, 0,
                                   map.data(), map.size(), &lsn));
  return wal_->SyncTo(lsn);
}

void DurableBlockDevice::ExtendInnerTo(uint64_t id) {
  while (inner_->num_allocated() <= id) inner_->Allocate();
}

Status DurableBlockDevice::Read(uint64_t id, void* buf) {
  if (wal_ != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      // Uncommitted image lives only in the overlay; still one block
      // read of this device as far as the algorithm is concerned.
      std::memcpy(buf, it->second.data(), block_size());
      stats_.block_reads++;
      stats_.parallel_reads++;
      stats_.bytes_read += block_size();
      return Status::OK();
    }
    if (id >= inner_->num_allocated()) {
      // Allocated via the journaled map but never written: zeros.
      std::memset(buf, 0, block_size());
      stats_.block_reads++;
      stats_.parallel_reads++;
      stats_.bytes_read += block_size();
      return Status::OK();
    }
  }
  Status s = inner_->Read(id, buf);
  if (s.ok()) {
    stats_.block_reads++;
    stats_.parallel_reads++;
    stats_.bytes_read += block_size();
  }
  return s;
}

Status DurableBlockDevice::Write(uint64_t id, const void* buf) {
  if (wal_ == nullptr) {
    Status s = inner_->Write(id, buf);
    if (s.ok()) {
      stats_.block_writes++;
      stats_.parallel_writes++;
      stats_.bytes_written += block_size();
    }
    return s;
  }
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t lsn = 0;
  VEM_RETURN_IF_ERROR(wal_->Append(wal::RecordType::kBlockImage, cur_txn_, id,
                                   buf, block_size(), &lsn));
  auto& img = pending_[id];
  img.assign(static_cast<const char*>(buf),
             static_cast<const char*>(buf) + block_size());
  stats_.block_writes++;
  stats_.parallel_writes++;
  stats_.bytes_written += block_size();
  return Status::OK();
}

Status DurableBlockDevice::Commit() {
  if (wal_ == nullptr) return inner_->Sync();
  std::unique_lock<std::mutex> lk(mu_);
  uint64_t txn = cur_txn_;
  std::unordered_map<uint64_t, std::vector<char>> batch;
  batch.swap(pending_);
  cur_txn_++;
  lk.unlock();
  // Durability point: the commit record hits the medium here. An OK
  // return from the log force is the moment the transaction is safe;
  // everything after is redo work a crash would simply replay.
  Status s = wal_->Commit(txn, nullptr);
  if (!s.ok()) {
    // The transaction may or may not be durable; surface the failure
    // and leave the images to recovery rather than half-applying.
    return s;
  }
  std::vector<uint64_t> ids;
  ids.reserve(batch.size());
  for (auto& kv : batch) {
    WalTestMaybeCrash();  // between commit-ack and data apply
    ExtendInnerTo(kv.first);
    Status w = inner_->SupportsUncounted()
                   ? inner_->WriteUncounted(kv.first, kv.second.data())
                   : inner_->Write(kv.first, kv.second.data());
    VEM_RETURN_IF_ERROR(w);
    if (inner_->SupportsUncounted()) ids.push_back(kv.first);
  }
  WalTestMaybeCrash();  // applied, ack not yet returned
  if (!ids.empty()) inner_->AccountWriteIds(ids.data(), ids.size());
  return Status::OK();
}

size_t DurableBlockDevice::pending_blocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

Status DurableBlockDevice::Checkpoint() {
  if (wal_ == nullptr) return inner_->Sync();
  std::lock_guard<std::mutex> lk(mu_);
  if (!pending_.empty()) {
    return Status::InvalidArgument(
        "Checkpoint with uncommitted writes: Commit() first");
  }
  // Data first, then cut the log: the log must stay the durable copy of
  // anything the data device hasn't persisted yet.
  VEM_RETURN_IF_ERROR(inner_->Sync());
  VEM_RETURN_IF_ERROR(wal_->Reset());
  return WriteCheckpointLocked();
}

bool DurableBlockDevice::SupportsUncounted() const {
  return wal_ == nullptr && inner_->SupportsUncounted();
}

bool DurableBlockDevice::SupportsAsync() const {
  return wal_ == nullptr && inner_->SupportsAsync();
}

Status DurableBlockDevice::ReadUncounted(uint64_t id, void* buf) {
  if (wal_ != nullptr) {
    return Status::NotSupported("journaling device has no uncounted plane");
  }
  return inner_->ReadUncounted(id, buf);
}

Status DurableBlockDevice::WriteUncounted(uint64_t id, const void* buf) {
  if (wal_ != nullptr) {
    return Status::NotSupported("journaling device has no uncounted plane");
  }
  return inner_->WriteUncounted(id, buf);
}

void DurableBlockDevice::AccountReads(uint64_t blocks) {
  inner_->AccountReads(blocks);
  BlockDevice::AccountReads(blocks);
}

void DurableBlockDevice::AccountWrites(uint64_t blocks) {
  inner_->AccountWrites(blocks);
  BlockDevice::AccountWrites(blocks);
}

void DurableBlockDevice::AccountReadBatch(const uint64_t* ids,
                                          uint64_t blocks) {
  inner_->AccountReadBatch(ids, blocks);
  BlockDevice::AccountReads(blocks);
}

void DurableBlockDevice::AccountWriteIds(const uint64_t* ids,
                                         uint64_t blocks) {
  inner_->AccountWriteIds(ids, blocks);
  BlockDevice::AccountWrites(blocks);
}

void DurableBlockDevice::AccountWriteBatch(const uint64_t* ids,
                                           uint64_t blocks) {
  inner_->AccountWriteBatch(ids, blocks);
  BlockDevice::AccountWrites(blocks);
}

uint64_t DurableBlockDevice::PrefetchRoute(uint64_t block_id) const {
  return inner_->PrefetchRoute(block_id);
}

uint64_t DurableBlockDevice::EngineDiskTag(uint64_t block_id) const {
  return inner_->EngineDiskTag(block_id);
}

Status DurableBlockDevice::Sync() {
  if (wal_ != nullptr) {
    VEM_RETURN_IF_ERROR(wal_->SyncTo(wal_->last_lsn()));
  }
  return inner_->Sync();
}

uint64_t DurableBlockDevice::wal_last_lsn() const {
  return wal_ != nullptr ? wal_->last_lsn() : 0;
}

Status DurableBlockDevice::EnsureWalDurable(uint64_t lsn) {
  return wal_ != nullptr ? wal_->SyncTo(lsn) : Status::OK();
}

uint64_t DurableBlockDevice::Allocate() {
  if (wal_ == nullptr) return inner_->Allocate();
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = next_id_++;
  }
  live_blocks_++;
  (void)wal_->Append(wal::RecordType::kAlloc, cur_txn_, id, nullptr, 0,
                     nullptr);
  return id;
}

void DurableBlockDevice::Free(uint64_t id) {
  if (wal_ == nullptr) {
    inner_->Free(id);
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  free_list_.push_back(id);
  live_blocks_--;
  pending_.erase(id);  // a freed block's uncommitted image is moot
  (void)wal_->Append(wal::RecordType::kFree, cur_txn_, id, nullptr, 0,
                     nullptr);
}

uint64_t DurableBlockDevice::num_allocated() const {
  if (wal_ == nullptr) return inner_->num_allocated();
  std::lock_guard<std::mutex> lk(mu_);
  return live_blocks_;
}

void DurableBlockDevice::set_io_engine(IoEngine* engine) {
  BlockDevice::set_io_engine(engine);
  inner_->set_io_engine(engine);
}

DurableStorage::DurableStorage(const std::string& base_path,
                               const Options& opts) {
  const bool persistent = opts.enable_wal;
  data = std::make_unique<FileBlockDevice>(
      base_path, opts.block_size, /*unlink_on_close=*/!persistent,
      opts.direct_io, opts.sync_on_close, /*open_existing=*/persistent);
  if (opts.enable_wal) {
    WalManager::Config cfg;
    cfg.block_size = opts.block_size;
    cfg.group_commit_us = opts.wal_group_commit_us;
    wal = std::make_unique<WalManager>(base_path + ".wal", cfg);
  }
  device = std::make_unique<DurableBlockDevice>(data.get(), wal.get());
}

DurableStorage::~DurableStorage() = default;

bool DurableStorage::valid() const {
  return data != nullptr && data->valid() &&
         (wal == nullptr || wal->valid()) && device != nullptr &&
         device->valid();
}

Status DurableStorage::status() const {
  if (data != nullptr && !data->last_error().ok()) return data->last_error();
  if (wal != nullptr && !wal->status().ok()) return wal->status();
  if (device != nullptr) return device->status();
  return Status::OK();
}

}  // namespace vem
