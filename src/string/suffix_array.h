// External suffix array construction by prefix doubling —
// O(Sort(N) · log N) I/Os (survey §string processing).
//
// Larsson–Sadakane externalized: rank_k(i) orders suffixes by their first
// k characters; one round sorts tuples (rank_k(i), rank_k(i+k), i) to
// produce rank_{2k}. The shifted ranks rank_k(i+k) are obtained with a
// lagged second reader over the id-ordered rank array (positions are
// dense), so each round is two external sorts plus scans.
#pragma once

#include <algorithm>

#include "core/ext_vector.h"
#include "io/block_device.h"
#include "sort/external_sort.h"
#include "util/status.h"

namespace vem {

/// External suffix array builder over a byte text.
class SuffixArrayBuilder {
 public:
  SuffixArrayBuilder(BlockDevice* dev, size_t memory_budget_bytes)
      : dev_(dev), memory_budget_(memory_budget_bytes) {}

  /// Doubling rounds of the last Build (== ceil(log2 N) worst case).
  size_t rounds() const { return rounds_; }

  /// Build the suffix array of `text`: out[r] = start position of the
  /// r-th smallest suffix. Suffixes are compared as usual with the
  /// shorter-is-smaller rule (an implicit sentinel smaller than any byte).
  Status Build(const ExtVector<uint8_t>& text, ExtVector<uint64_t>* out) {
    rounds_ = 0;
    const uint64_t n = text.size();
    if (n == 0) return Status::OK();

    struct RankedPos {  // sorted by (r1, r2) to assign new ranks
      uint64_t r1, r2;
      uint64_t pos;
      bool operator<(const RankedPos& o) const {
        if (r1 != o.r1) return r1 < o.r1;
        if (r2 != o.r2) return r2 < o.r2;
        return pos < o.pos;
      }
    };
    struct PosRank {  // rank array entry, sorted by pos
      uint64_t pos;
      uint64_t rank;
      bool operator<(const PosRank& o) const { return pos < o.pos; }
    };

    // Round 0: rank by first character (rank 1..; 0 = past-the-end).
    ExtVector<PosRank> ranks(dev_);  // sorted by pos
    bool all_distinct = false;
    {
      ExtVector<RankedPos> first(dev_);
      {
        typename ExtVector<uint8_t>::Reader r(&text);
        typename ExtVector<RankedPos>::Writer w(&first);
        uint8_t c;
        uint64_t pos = 0;
        while (r.Next(&c)) {
          if (!w.Append(RankedPos{static_cast<uint64_t>(c) + 1, 0, pos})) {
            return w.status();
          }
          pos++;
        }
        VEM_RETURN_IF_ERROR(r.status());
        VEM_RETURN_IF_ERROR(w.Finish());
      }
      VEM_RETURN_IF_ERROR(AssignRanks(first, &ranks, &all_distinct));
    }

    uint64_t k = 1;
    while (!all_distinct && k < n) {
      rounds_++;
      // Tuples (rank[i], rank[i+k], i) via two lagged readers.
      ExtVector<RankedPos> tuples(dev_);
      {
        typename ExtVector<PosRank>::Reader a(&ranks);
        typename ExtVector<PosRank>::Reader b(&ranks, k);
        typename ExtVector<RankedPos>::Writer w(&tuples);
        PosRank pa, pb{};
        bool have_b = b.Next(&pb);
        while (a.Next(&pa)) {
          uint64_t r2 = 0;  // 0 = suffix shorter than i+k: sorts first
          if (have_b && pb.pos == pa.pos + k) {
            r2 = pb.rank;
            have_b = b.Next(&pb);
          }
          if (!w.Append(RankedPos{pa.rank, r2, pa.pos})) return w.status();
        }
        VEM_RETURN_IF_ERROR(a.status());
        VEM_RETURN_IF_ERROR(b.status());
        VEM_RETURN_IF_ERROR(w.Finish());
      }
      ranks.Destroy();
      VEM_RETURN_IF_ERROR(AssignRanks(tuples, &ranks, &all_distinct));
      k *= 2;
    }
    // Emit: sort (pos, rank) by rank.
    auto by_rank = [](const PosRank& a, const PosRank& b) {
      return a.rank < b.rank;
    };
    ExtVector<PosRank> by_r(dev_);
    VEM_RETURN_IF_ERROR(ExternalSort<PosRank, decltype(by_rank)>(
        ranks, &by_r, memory_budget_, by_rank));
    ranks.Destroy();
    typename ExtVector<PosRank>::Reader r(&by_r);
    ExtVector<uint64_t>::Writer w(out);
    PosRank pr;
    while (r.Next(&pr)) {
      if (!w.Append(pr.pos)) return w.status();
    }
    VEM_RETURN_IF_ERROR(r.status());
    return w.Finish();
  }

 private:
  /// Sort tuples by (r1, r2); equal (r1, r2) pairs share a rank (the
  /// 1-based index of the first member). Output sorted by pos.
  template <typename RankedPos, typename PosRank>
  Status AssignRanksImpl(ExtVector<RankedPos>& tuples,
                         ExtVector<PosRank>* ranks, bool* all_distinct) {
    ExtVector<RankedPos> sorted(dev_);
    VEM_RETURN_IF_ERROR(ExternalSort(tuples, &sorted, memory_budget_));
    tuples.Destroy();
    ExtVector<PosRank> unsorted(dev_);
    *all_distinct = true;
    {
      typename ExtVector<RankedPos>::Reader r(&sorted);
      typename ExtVector<PosRank>::Writer w(&unsorted);
      RankedPos t;
      uint64_t index = 0, rank = 0;
      uint64_t prev_r1 = 0, prev_r2 = 0;
      bool first = true;
      while (r.Next(&t)) {
        index++;
        if (first || t.r1 != prev_r1 || t.r2 != prev_r2) {
          rank = index;
        } else {
          *all_distinct = false;
        }
        first = false;
        prev_r1 = t.r1;
        prev_r2 = t.r2;
        if (!w.Append(PosRank{t.pos, rank})) return w.status();
      }
      VEM_RETURN_IF_ERROR(r.status());
      VEM_RETURN_IF_ERROR(w.Finish());
    }
    sorted.Destroy();
    VEM_RETURN_IF_ERROR(ExternalSort(unsorted, ranks, memory_budget_));
    return Status::OK();
  }

  template <typename RankedPos, typename PosRank>
  Status AssignRanks(ExtVector<RankedPos>& tuples, ExtVector<PosRank>* ranks,
                     bool* all_distinct) {
    return AssignRanksImpl(tuples, ranks, all_distinct);
  }

  BlockDevice* dev_;
  size_t memory_budget_;
  size_t rounds_ = 0;
};

}  // namespace vem
