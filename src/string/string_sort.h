// External string sorting (survey §string processing).
//
// Sorting variable-length strings by shipping whole payloads through a
// comparison sort wastes bandwidth; the classic fix (used by TPIE/STXXL
// string sorters) is to sort fixed-size (key-prefix, id) records and
// refine ties round by round:
//   round t sorts records (group, next-8-bytes, id); runs of equal
//   (group, key) become finer groups; a group of size 1 (or an exhausted
//   string) is finally placed. Each round is one external sort of the
//   unresolved records plus one sequential scan of the corpus to fetch
//   the next 8-byte chunks — no random I/O.
//
// Strings live in a corpus blob (all bytes concatenated, in id order)
// plus an offsets array; strings must not contain NUL (0x00), which is
// used as the padding byte ("shorter sorts first").
#pragma once

#include <algorithm>
#include <vector>

#include "core/ext_vector.h"
#include "io/block_device.h"
#include "sort/external_sort.h"
#include "util/status.h"

namespace vem {

/// A corpus of strings on a device: concatenated bytes + offsets.
class StringCorpus {
 public:
  explicit StringCorpus(BlockDevice* dev)
      : blob_(dev), offsets_(dev) {}

  /// Append all strings (builder-style; call Finalize when done).
  Status Add(const std::string& s) {
    if (!building_) {
      blob_writer_ = std::make_unique<ExtVector<char>::Writer>(&blob_);
      building_ = true;
    }
    pending_offsets_.push_back(total_bytes_);
    for (char c : s) {
      if (c == '\0') return Status::InvalidArgument("NUL byte in string");
      if (!blob_writer_->Append(c)) return blob_writer_->status();
    }
    total_bytes_ += s.size();
    return Status::OK();
  }

  Status Finalize() {
    if (building_) {
      VEM_RETURN_IF_ERROR(blob_writer_->Finish());
      blob_writer_.reset();
      building_ = false;
    }
    pending_offsets_.push_back(total_bytes_);  // end sentinel
    VEM_RETURN_IF_ERROR(
        offsets_.AppendAll(pending_offsets_.data(), pending_offsets_.size()));
    pending_offsets_.clear();
    return Status::OK();
  }

  size_t size() const {
    return offsets_.size() == 0 ? 0 : offsets_.size() - 1;
  }
  const ExtVector<char>& blob() const { return blob_; }
  const ExtVector<uint64_t>& offsets() const { return offsets_; }

  /// Read string i (sequential in the blob; test/debug helper).
  Status Get(size_t i, std::string* out) const {
    std::vector<uint64_t> offs;  // offsets are small; read both endpoints
    uint64_t lo, hi;
    {
      ExtVector<uint64_t>::Reader r(&offsets_, i);
      if (!r.Next(&lo) || !r.Next(&hi)) {
        return Status::InvalidArgument("string index out of range");
      }
    }
    out->clear();
    ExtVector<char>::Reader br(&blob_, lo);
    char c;
    for (uint64_t b = lo; b < hi; ++b) {
      if (!br.Next(&c)) return br.status();
      out->push_back(c);
    }
    return Status::OK();
  }

 private:
  ExtVector<char> blob_;
  ExtVector<uint64_t> offsets_;
  std::unique_ptr<ExtVector<char>::Writer> blob_writer_;
  std::vector<uint64_t> pending_offsets_;
  uint64_t total_bytes_ = 0;
  bool building_ = false;
};

/// External string sorter. Output: string ids in lexicographic order.
class ExternalStringSort {
 public:
  ExternalStringSort(BlockDevice* dev, size_t memory_budget_bytes)
      : dev_(dev), memory_budget_(memory_budget_bytes) {}

  /// Rounds (8-byte refinement passes) of the last Sort (tests/benches).
  size_t rounds() const { return rounds_; }

  Status Sort(const StringCorpus& corpus, ExtVector<uint64_t>* sorted_ids) {
    rounds_ = 0;
    const size_t n = corpus.size();
    if (n == 0) return Status::OK();

    struct Rec {
      uint64_t group;  // current tie-group (ordered)
      uint64_t key;    // next 8 bytes, big-endian packed
      uint64_t id;
      bool operator<(const Rec& o) const {
        if (group != o.group) return group < o.group;
        if (key != o.key) return key < o.key;
        return id < o.id;
      }
    };

    // Final placement: position -> id, collected as (group, id) where the
    // group number IS the final rank once everything is resolved.
    ExtVector<Rec> unresolved(dev_);
    VEM_RETURN_IF_ERROR(
        FetchChunks<Rec>(corpus, nullptr, 0, &unresolved));

    ExtVector<Rec> placed(dev_);  // resolved: (final_group, 0, id)
    size_t depth = 8;
    while (unresolved.size() > 0) {
      rounds_++;
      ExtVector<Rec> sorted(dev_);
      VEM_RETURN_IF_ERROR(ExternalSort(unresolved, &sorted, memory_budget_));
      unresolved.Destroy();
      // Re-group: scan runs of equal (group, key).
      //
      // Rank bookkeeping: a record whose parent tie-group is G and whose
      // position among the group-G records this round is p has final rank
      // in [G + p, ...): refinement only permutes records WITHIN a run,
      // so assigning run-start ranks `G + offset` keeps ranks globally
      // consistent across rounds.
      //
      // Runs are homogeneous: equal keys mean identical bytes including
      // padding, and since the corpus forbids NUL a padded (exhausted)
      // key can only equal another padded key of the same string tail.
      // Hence each run is either all-exhausted (equal strings: place all,
      // id order) or all-continuing (refine), and a singleton is placed
      // outright.
      ExtVector<Rec> next(dev_);
      {
        typename ExtVector<Rec>::Reader r(&sorted);
        typename ExtVector<Rec>::Writer pw(&placed);
        typename ExtVector<Rec>::Writer nw(&next);
        Rec rec{};
        bool have = r.Next(&rec);
        uint64_t cur_parent = ~0ull;
        uint64_t offset = 0;
        while (have) {
          if (rec.group != cur_parent) {
            cur_parent = rec.group;
            offset = 0;
          }
          const Rec head = rec;
          const uint64_t base = cur_parent + offset;
          const bool exhausted = (head.key & 0xFF) == 0;
          have = r.Next(&rec);
          bool multi = have && rec.group == head.group && rec.key == head.key;
          if (exhausted || !multi) {
            if (!pw.Append(Rec{base, 0, head.id})) return pw.status();
          } else {
            if (!nw.Append(Rec{base, 0, head.id})) return nw.status();
          }
          uint64_t len = 1;
          while (have && rec.group == head.group && rec.key == head.key) {
            if (exhausted) {
              if (!pw.Append(Rec{base + len, 0, rec.id})) return pw.status();
            } else {
              if (!nw.Append(Rec{base, 0, rec.id})) return nw.status();
            }
            len++;
            have = r.Next(&rec);
          }
          offset += len;
        }
        VEM_RETURN_IF_ERROR(r.status());
        VEM_RETURN_IF_ERROR(pw.Finish());
        VEM_RETURN_IF_ERROR(nw.Finish());
      }
      sorted.Destroy();
      if (next.size() == 0) {
        unresolved = std::move(next);
        break;
      }
      // Fetch the next 8 bytes for every continuing record.
      ExtVector<Rec> refreshed(dev_);
      VEM_RETURN_IF_ERROR(FetchChunks<Rec>(corpus, &next, depth, &refreshed));
      next.Destroy();
      unresolved = std::move(refreshed);
      depth += 8;
    }
    // placed: (final rank, 0, id); sort by rank and emit ids.
    ExtVector<Rec> final_sorted(dev_);
    VEM_RETURN_IF_ERROR(ExternalSort(placed, &final_sorted, memory_budget_));
    placed.Destroy();
    {
      typename ExtVector<Rec>::Reader r(&final_sorted);
      ExtVector<uint64_t>::Writer w(sorted_ids);
      Rec rec;
      while (r.Next(&rec)) {
        if (!w.Append(rec.id)) return w.status();
      }
      VEM_RETURN_IF_ERROR(r.status());
      VEM_RETURN_IF_ERROR(w.Finish());
    }
    return Status::OK();
  }

 private:
  /// Build records with the 8-byte chunk at `depth` for either every
  /// string (subset == nullptr, groups all 0) or the given subset
  /// (sorted by id after an external sort here). One corpus scan.
  template <typename Rec>
  Status FetchChunks(const StringCorpus& corpus, ExtVector<Rec>* subset,
                     size_t depth, ExtVector<Rec>* out) {
    // Order requests by id so the blob scan is sequential.
    ExtVector<Rec> by_id(dev_);
    if (subset != nullptr) {
      auto cmp = [](const Rec& a, const Rec& b) { return a.id < b.id; };
      VEM_RETURN_IF_ERROR(ExternalSort<Rec, decltype(cmp)>(
          *subset, &by_id, memory_budget_, cmp));
    }
    ExtVector<uint64_t>::Reader offr(&corpus.offsets());
    ExtVector<char>::Reader blob_reader(&corpus.blob());
    typename ExtVector<Rec>::Writer w(out);
    uint64_t off = 0, next_off = 0;
    if (!offr.Next(&off)) return Status::Corruption("empty offsets");
    uint64_t cur_id = 0;

    auto emit = [&](uint64_t group, uint64_t id, uint64_t lo,
                    uint64_t hi) -> Status {
      // Pack bytes [lo+depth, min(hi, lo+depth+8)) big-endian, 0-padded.
      // Requests arrive in id order, so the shared blob reader only
      // moves forward: the whole round is one sequential corpus pass.
      uint64_t key = 0;
      uint64_t start = lo + depth;
      size_t take = start < hi ? std::min<uint64_t>(8, hi - start) : 0;
      if (take > 0) {
        blob_reader.Seek(start);
        for (size_t b = 0; b < take; ++b) {
          char c;
          if (!blob_reader.Next(&c)) return blob_reader.status();
          key |= static_cast<uint64_t>(static_cast<unsigned char>(c))
                 << (8 * (7 - b));
        }
      }
      if (!w.Append(Rec{group, key, id})) return w.status();
      return Status::OK();
    };

    if (subset == nullptr) {
      while (offr.Next(&next_off)) {
        VEM_RETURN_IF_ERROR(emit(0, cur_id, off, next_off));
        off = next_off;
        cur_id++;
      }
      VEM_RETURN_IF_ERROR(offr.status());
    } else {
      typename ExtVector<Rec>::Reader sr(&by_id);
      Rec rec;
      while (sr.Next(&rec)) {
        // Advance the offsets reader to rec.id.
        while (cur_id <= rec.id) {
          if (!offr.Next(&next_off)) {
            return Status::Corruption("offsets ended early");
          }
          if (cur_id < rec.id) off = next_off;
          cur_id++;
        }
        VEM_RETURN_IF_ERROR(emit(rec.group, rec.id, off, next_off));
        off = next_off;
      }
      VEM_RETURN_IF_ERROR(sr.status());
    }
    VEM_RETURN_IF_ERROR(w.Finish());
    by_id.Destroy();
    return Status::OK();
  }

  BlockDevice* dev_;
  size_t memory_budget_;
  size_t rounds_ = 0;
};

}  // namespace vem
