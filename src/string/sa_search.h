// Substring search over an external suffix array — the query side of the
// survey's text-indexing motivation.
//
// Binary search over the suffix array with pattern comparisons against
// the text: O(log_2 N · (1 + |P|/B)) I/Os per query (each probe reads
// the pattern-length prefix of one suffix). Reports the match range
// [lo, hi) in the SA and can enumerate occurrence positions at
// Scan(range) cost.
#pragma once

#include <string>

#include "core/ext_vector.h"
#include "util/status.h"

namespace vem {

/// Read-only searcher over (text, suffix array) pair on a device.
class SuffixArraySearcher {
 public:
  SuffixArraySearcher(const ExtVector<uint8_t>* text,
                      const ExtVector<uint64_t>* sa)
      : text_(text), sa_(sa) {}

  /// Count occurrences of `pattern` (empty pattern matches everywhere).
  Status Count(const std::string& pattern, uint64_t* count) {
    uint64_t lo = 0, hi = 0;
    VEM_RETURN_IF_ERROR(MatchRange(pattern, &lo, &hi));
    *count = hi - lo;
    return Status::OK();
  }

  /// Append all occurrence positions (text offsets, SA order) to *out.
  Status Find(const std::string& pattern, std::vector<uint64_t>* out) {
    uint64_t lo = 0, hi = 0;
    VEM_RETURN_IF_ERROR(MatchRange(pattern, &lo, &hi));
    if (lo == hi) return Status::OK();
    ExtVector<uint64_t>::Reader r(sa_, lo);
    uint64_t pos;
    for (uint64_t i = lo; i < hi; ++i) {
      if (!r.Next(&pos)) return r.status();
      out->push_back(pos);
    }
    return Status::OK();
  }

  /// SA range [lo, hi) of suffixes with `pattern` as a prefix.
  Status MatchRange(const std::string& pattern, uint64_t* lo, uint64_t* hi) {
    const uint64_t n = sa_->size();
    // Lower bound: first suffix >= pattern.
    uint64_t a = 0, b = n;
    while (a < b) {
      uint64_t mid = (a + b) / 2;
      int c;
      VEM_RETURN_IF_ERROR(CompareSuffix(mid, pattern, &c));
      if (c < 0) a = mid + 1; else b = mid;
    }
    *lo = a;
    // Upper bound: first suffix that does not have pattern as a prefix
    // and is greater (compare with "prefix semantics": a suffix equal on
    // |P| bytes counts as < for this bound).
    b = n;
    while (a < b) {
      uint64_t mid = (a + b) / 2;
      int c;
      VEM_RETURN_IF_ERROR(CompareSuffix(mid, pattern, &c));
      if (c <= 0) a = mid + 1; else b = mid;
    }
    *hi = a;
    return Status::OK();
  }

 private:
  /// Compare suffix SA[idx] against the pattern on |pattern| bytes:
  /// -1 below, 0 pattern-is-prefix, +1 above.
  Status CompareSuffix(uint64_t idx, const std::string& pattern, int* out) {
    uint64_t start;
    {
      ExtVector<uint64_t>::Reader r(sa_, idx);
      if (!r.Next(&start)) return Status::Corruption("SA read failed");
    }
    ExtVector<uint8_t>::Reader tr(text_, start);
    for (size_t i = 0; i < pattern.size(); ++i) {
      uint8_t c;
      if (!tr.Next(&c)) {
        VEM_RETURN_IF_ERROR(tr.status());
        *out = -1;  // suffix ended: shorter sorts first
        return Status::OK();
      }
      uint8_t p = static_cast<uint8_t>(pattern[i]);
      if (c < p) {
        *out = -1;
        return Status::OK();
      }
      if (c > p) {
        *out = 1;
        return Status::OK();
      }
    }
    *out = 0;
    return Status::OK();
  }

  const ExtVector<uint8_t>* text_;
  const ExtVector<uint64_t>* sa_;
};

}  // namespace vem
