// AdmissionController tests: the serving plane's front door pinned
// deterministically — FIFO head-of-line fairness, deadline shedding to
// Status::Busy, refusal of impossible floors, the bounded queue, and
// floor conservation under multi-threaded admission churn (the case the
// TSan matrix runs).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "io/memory_arbiter.h"
#include "serve/admission.h"
#include "util/random.h"

namespace vem {
namespace {

/// Deterministic clock: tests advance it by hand.
struct FakeClock {
  std::atomic<uint64_t> now_ns{0};
  MemoryArbiter::Clock fn() {
    return [this] { return now_ns.load(); };
  }
};

MemoryArbiter::Config ServeConfig() {
  MemoryArbiter::Config cfg;
  cfg.budget_bytes = 64 * 4096;  // 64 blocks of machine M
  cfg.block_size = 4096;
  return cfg;
}

TEST(Admission, AdmitsUntilFloorsFillM) {
  FakeClock clk;
  MemoryArbiter arb(ServeConfig(), clk.fn());
  AdmissionController ctrl(&arb, AdmissionController::Config(), clk.fn());

  AdmissionTicket t1, t2, t3;
  ASSERT_TRUE(ctrl.TryAdmit("q1", 1.0, 24, &t1).ok());
  ASSERT_TRUE(ctrl.TryAdmit("q2", 1.0, 24, &t2).ok());
  EXPECT_EQ(arb.floor_reserved_blocks(), 48u);
  // A third 24-block floor would oversubscribe 64: shed, not admitted.
  Status s = ctrl.TryAdmit("q3", 1.0, 24, &t3);
  EXPECT_TRUE(s.IsBusy());
  EXPECT_FALSE(t3.valid());
  // Releasing a ticket frees its floor; the same admission now fits.
  t1.Release();
  EXPECT_EQ(arb.floor_reserved_blocks(), 24u);
  ASSERT_TRUE(ctrl.TryAdmit("q3", 1.0, 24, &t3).ok());

  auto st = ctrl.stats();
  EXPECT_EQ(st.admitted, 3u);
  EXPECT_EQ(st.active, 2u);  // t1 released
  EXPECT_EQ(st.shed_queue_full, 1u);
}

TEST(Admission, ImpossibleFloorIsRefusedNotQueued) {
  FakeClock clk;
  MemoryArbiter arb(ServeConfig(), clk.fn());
  AdmissionController ctrl(&arb, AdmissionController::Config(), clk.fn());
  AdmissionTicket t;
  // A floor larger than the whole machine can never be admitted: refuse
  // with InvalidArgument up front instead of parking the caller forever.
  Status s = ctrl.Admit("whale", 1.0, 65, /*deadline_ns=*/0, &t);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(ctrl.stats().refused_impossible, 1u);
  EXPECT_EQ(ctrl.stats().waiting, 0u);
}

TEST(Admission, DeadlineShedReturnsBusy) {
  FakeClock clk;
  MemoryArbiter arb(ServeConfig(), clk.fn());
  AdmissionController ctrl(&arb, AdmissionController::Config(), clk.fn());

  AdmissionTicket whole;
  ASSERT_TRUE(ctrl.TryAdmit("holder", 1.0, 64, &whole).ok());

  // A waiter with a 1us deadline against a full machine: the admission
  // loop observes the advanced fake clock on its polling backstop and
  // sheds with Busy — the query never ran, so it never burned I/O.
  Status result = Status::OK();
  std::thread waiter([&] {
    AdmissionTicket t;
    result = ctrl.Admit("late", 1.0, 8, /*deadline_ns=*/1000, &t);
  });
  while (ctrl.stats().waiting == 0) std::this_thread::yield();
  clk.now_ns += 2000;  // past the deadline
  waiter.join();
  EXPECT_TRUE(result.IsBusy());
  auto st = ctrl.stats();
  EXPECT_EQ(st.shed_deadline, 1u);
  EXPECT_EQ(st.waiting, 0u);
  EXPECT_EQ(st.admitted, 1u);  // only the holder
}

TEST(Admission, QueueIsFifoHeadOfLine) {
  FakeClock clk;
  MemoryArbiter arb(ServeConfig(), clk.fn());
  AdmissionController ctrl(&arb, AdmissionController::Config(), clk.fn());

  AdmissionTicket big;
  ASSERT_TRUE(ctrl.TryAdmit("big", 1.0, 56, &big).ok());

  // A needs 48 blocks (blocked: 56 + 48 > 64). B needs 8 and WOULD fit
  // right now — but FIFO head-of-line blocking makes it wait behind A,
  // or a stream of small queries would starve the large waiter forever.
  std::atomic<int> order{0};
  int admitted_a = -1, admitted_b = -1;
  std::thread ta([&] {
    AdmissionTicket t;
    ASSERT_TRUE(ctrl.Admit("a", 1.0, 48, 0, &t).ok());
    admitted_a = order.fetch_add(1);
  });
  while (ctrl.stats().waiting < 1) std::this_thread::yield();
  std::thread tb([&] {
    AdmissionTicket t;
    ASSERT_TRUE(ctrl.Admit("b", 1.0, 8, 0, &t).ok());
    admitted_b = order.fetch_add(1);
  });
  while (ctrl.stats().waiting < 2) std::this_thread::yield();
  // B fits behind big (56+8 = 64) but must not jump the queue.
  EXPECT_EQ(ctrl.stats().admitted, 1u);
  big.Release();  // 48 free: A admits first, then B behind it
  ta.join();
  tb.join();
  EXPECT_EQ(admitted_a, 0);
  EXPECT_EQ(admitted_b, 1);
  EXPECT_EQ(ctrl.stats().admitted, 3u);
  EXPECT_EQ(ctrl.stats().queued, 2u);
}

TEST(Admission, BoundedQueueShedsImmediately) {
  FakeClock clk;
  MemoryArbiter arb(ServeConfig(), clk.fn());
  AdmissionController::Config cfg;
  cfg.max_queue = 1;
  AdmissionController ctrl(&arb, cfg, clk.fn());

  AdmissionTicket big;
  ASSERT_TRUE(ctrl.TryAdmit("big", 1.0, 64, &big).ok());
  std::thread waiter([&] {
    AdmissionTicket t;
    ASSERT_TRUE(ctrl.Admit("queued", 1.0, 8, 0, &t).ok());
  });
  while (ctrl.stats().waiting < 1) std::this_thread::yield();
  // The queue is at its bound: the next admission sheds at the door.
  AdmissionTicket t;
  EXPECT_TRUE(ctrl.Admit("overflow", 1.0, 8, 0, &t).IsBusy());
  EXPECT_EQ(ctrl.stats().shed_queue_full, 1u);
  big.Release();
  waiter.join();
}

/// Multi-threaded churn (the TSan-matrix case): concurrent admits,
/// leases against admitted tenants, and releases must conserve both
/// ledgers — registered floors and charged blocks never exceed M.
TEST(Admission, FloorConservationUnderChurn) {
  MemoryArbiter arb(ServeConfig());  // real clock: genuine interleavings
  AdmissionController::Config cfg;
  cfg.max_queue = 16;
  AdmissionController ctrl(&arb, cfg);

  constexpr int kThreads = 6;
  constexpr int kIters = 40;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      Rng rng(100 + id);
      for (int i = 0; i < kIters && !failed.load(); ++i) {
        size_t floor = 4 + rng.Uniform(17);  // 4..20 blocks
        AdmissionTicket t;
        Status s = ctrl.Admit("churn" + std::to_string(id), 1.0, floor,
                              /*deadline_ns=*/50 * 1000 * 1000, &t);
        if (s.IsBusy()) continue;  // shed under contention: expected
        if (!s.ok()) {
          failed = true;
          break;
        }
        // Exercise the tenant: open and drop a pool lease against it.
        auto lease = arb.LeasePool(floor, t.tenant());
        if (arb.charged_blocks() > arb.total_blocks() ||
            arb.floor_reserved_blocks() > arb.total_blocks()) {
          failed = true;
        }
      }
    });
  }
  for (int probe = 0; probe < 200; ++probe) {
    // Sample the invariants from outside while the churn runs.
    ASSERT_LE(arb.floor_reserved_blocks(), arb.total_blocks());
    ASSERT_LE(arb.charged_blocks(), arb.total_blocks());
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ctrl.stats().active, 0u);
  EXPECT_EQ(arb.floor_reserved_blocks(), 0u);
  EXPECT_EQ(arb.charged_blocks(), 0u);
}

}  // namespace
}  // namespace vem
