// Tests for semi-external Dijkstra.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "graph/sssp.h"
#include "io/memory_block_device.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 512;
constexpr size_t kMem = 8192;

std::vector<uint64_t> ReferenceDijkstra(
    uint64_t n, const std::vector<WeightedEdge>& edges, uint64_t source,
    bool undirected) {
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> adj(n);
  for (const auto& e : edges) {
    adj[e.u].push_back({e.v, e.w});
    if (undirected) adj[e.v].push_back({e.u, e.w});
  }
  std::vector<uint64_t> dist(n, kInfDist);
  using QI = std::pair<uint64_t, uint64_t>;
  std::priority_queue<QI, std::vector<QI>, std::greater<>> pq;
  dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (auto [t, w] : adj[v]) {
      if (d + w < dist[t]) {
        dist[t] = d + w;
        pq.push({d + w, t});
      }
    }
  }
  return dist;
}

struct SsspCase {
  uint64_t n;
  size_t m;
  bool undirected;
  uint64_t seed;
};

class SsspSweep : public ::testing::TestWithParam<SsspCase> {};

TEST_P(SsspSweep, MatchesReferenceDijkstra) {
  const SsspCase& c = GetParam();
  MemoryBlockDevice dev(kBlock);
  BufferPool pool(&dev, 16);
  Rng rng(c.seed);
  std::vector<WeightedEdge> e;
  // Ensure some connectivity with a random spanning-ish chain.
  for (uint64_t v = 1; v < c.n; ++v) {
    if (rng.Uniform(4) != 0) {
      e.push_back({rng.Uniform(v), v, 1 + rng.Uniform(100)});
    }
  }
  for (size_t i = 0; i < c.m; ++i) {
    e.push_back({rng.Uniform(c.n), rng.Uniform(c.n), 1 + rng.Uniform(100)});
  }
  std::vector<uint64_t> expect = ReferenceDijkstra(c.n, e, 0, c.undirected);

  ExtVector<WeightedEdge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  WeightedGraph g(&dev, &pool);
  ASSERT_TRUE(g.Build(edges, c.n, kMem, c.undirected).ok());
  SemiExternalSssp sssp(&dev, &pool, kMem);
  ExtVector<uint64_t> dist(&dev, &pool);
  ASSERT_TRUE(sssp.Run(g, 0, &dist).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(dist.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), c.n);
  for (uint64_t v = 0; v < c.n; ++v) {
    ASSERT_EQ(got[v], expect[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SsspSweep,
    ::testing::Values(SsspCase{10, 20, false, 1},
                      SsspCase{2000, 8000, false, 2},
                      SsspCase{2000, 8000, true, 3},
                      SsspCase{5000, 2000, true, 4}  // sparse, many islands
                      ));

TEST(Sssp, UnreachableVerticesStayInfinite) {
  MemoryBlockDevice dev(kBlock);
  BufferPool pool(&dev, 8);
  std::vector<WeightedEdge> e = {{0, 1, 5}, {1, 2, 7}, {4, 5, 1}};
  ExtVector<WeightedEdge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  WeightedGraph g(&dev, &pool);
  ASSERT_TRUE(g.Build(edges, 6, kMem, false).ok());
  SemiExternalSssp sssp(&dev, &pool, kMem);
  ExtVector<uint64_t> dist(&dev, &pool);
  ASSERT_TRUE(sssp.Run(g, 0, &dist).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(dist.ReadAll(&got).ok());
  EXPECT_EQ(got[0], 0u);
  EXPECT_EQ(got[1], 5u);
  EXPECT_EQ(got[2], 12u);
  EXPECT_EQ(got[3], kInfDist);
  EXPECT_EQ(got[4], kInfDist);
  EXPECT_EQ(got[5], kInfDist);
}

TEST(Sssp, GridMetricMatchesManhattanWhenUniform) {
  // Unit-weight grid: shortest path = Manhattan distance from the corner.
  const size_t side = 24;
  MemoryBlockDevice dev(kBlock);
  BufferPool pool(&dev, 16);
  std::vector<WeightedEdge> e;
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      uint64_t v = r * side + c;
      if (c + 1 < side) e.push_back({v, v + 1, 1});
      if (r + 1 < side) e.push_back({v, v + side, 1});
    }
  }
  ExtVector<WeightedEdge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  WeightedGraph g(&dev, &pool);
  ASSERT_TRUE(g.Build(edges, side * side, kMem, true).ok());
  SemiExternalSssp sssp(&dev, &pool, kMem);
  ExtVector<uint64_t> dist(&dev, &pool);
  ASSERT_TRUE(sssp.Run(g, 0, &dist).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(dist.ReadAll(&got).ok());
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      ASSERT_EQ(got[r * side + c], r + c);
    }
  }
}

}  // namespace
}  // namespace vem
