// Tests for distribution-sweep geometry: segment intersection, stabbing,
// dominance counting.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "geometry/batched_stabbing.h"
#include "geometry/range_counting.h"
#include "geometry/segment_intersection.h"
#include "io/memory_block_device.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr size_t kMem = 4096;

std::vector<IntersectionPair> BruteForce(const std::vector<HSegment>& hs,
                                         const std::vector<VSegment>& vs) {
  std::vector<IntersectionPair> out;
  for (const auto& h : hs) {
    for (const auto& v : vs) {
      if (v.y1 <= h.y && h.y <= v.y2 && h.x1 <= v.x && v.x <= h.x2) {
        out.push_back({h.id, v.id});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct SegCase {
  size_t nh, nv;
  uint64_t seed;
  double span;  // controls intersection density
};

class SegIntersectSweep : public ::testing::TestWithParam<SegCase> {};

TEST_P(SegIntersectSweep, MatchesBruteForce) {
  const SegCase& c = GetParam();
  MemoryBlockDevice dev(kBlock);
  Rng rng(c.seed);
  std::vector<HSegment> hs;
  std::vector<VSegment> vs;
  for (size_t i = 0; i < c.nh; ++i) {
    double x = rng.NextDouble() * 100, y = rng.NextDouble() * 100;
    hs.push_back({y, x, x + rng.NextDouble() * c.span, i});
  }
  for (size_t i = 0; i < c.nv; ++i) {
    double x = rng.NextDouble() * 100, y = rng.NextDouble() * 100;
    vs.push_back({x, y, y + rng.NextDouble() * c.span, i});
  }
  auto expect = BruteForce(hs, vs);

  ExtVector<HSegment> hv(&dev);
  ExtVector<VSegment> vv(&dev);
  ASSERT_TRUE(hv.AppendAll(hs.data(), hs.size()).ok());
  ASSERT_TRUE(vv.AppendAll(vs.data(), vs.size()).ok());
  OrthogonalSegmentIntersection osi(&dev, kMem);
  ExtVector<IntersectionPair> out(&dev);
  ASSERT_TRUE(osi.Run(hv, vv, &out).ok());
  std::vector<IntersectionPair> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect) << "nh=" << c.nh << " nv=" << c.nv;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegIntersectSweep,
    ::testing::Values(SegCase{10, 10, 1, 20},      // tiny (in-memory path)
                      SegCase{300, 300, 2, 10},    // recursion kicks in
                      SegCase{1000, 1000, 3, 5},   // deeper recursion
                      SegCase{2000, 50, 4, 50},    // H-heavy
                      SegCase{50, 2000, 5, 50},    // V-heavy
                      SegCase{800, 800, 6, 0.5})); // sparse hits

TEST(SegmentIntersection, EndpointTouchingCounts) {
  MemoryBlockDevice dev(kBlock);
  // V from (5,0) to (5,10); H at y=10 from x=5 to 8 (corner touch),
  // H at y=0 from 0 to 5 (corner touch), H at y=5 crossing, H missing.
  std::vector<HSegment> hs = {
      {10, 5, 8, 0}, {0, 0, 5, 1}, {5, 0, 10, 2}, {11, 0, 10, 3}};
  std::vector<VSegment> vs = {{5, 0, 10, 0}};
  ExtVector<HSegment> hv(&dev);
  ExtVector<VSegment> vv(&dev);
  ASSERT_TRUE(hv.AppendAll(hs.data(), hs.size()).ok());
  ASSERT_TRUE(vv.AppendAll(vs.data(), vs.size()).ok());
  OrthogonalSegmentIntersection osi(&dev, kMem);
  ExtVector<IntersectionPair> out(&dev);
  ASSERT_TRUE(osi.Run(hv, vv, &out).ok());
  std::vector<IntersectionPair> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<IntersectionPair>{{0, 0}, {1, 0}, {2, 0}}));
}

TEST(SegmentIntersection, AllVerticalsSameX) {
  // Exercises the uniform-x base case.
  MemoryBlockDevice dev(kBlock);
  Rng rng(9);
  std::vector<HSegment> hs;
  std::vector<VSegment> vs;
  for (size_t i = 0; i < 600; ++i) {
    double y = rng.NextDouble() * 100;
    hs.push_back({y, rng.NextDouble() * 10, 4.9 + rng.NextDouble() * 10,
                  i});
    double y1 = rng.NextDouble() * 100;
    vs.push_back({5.0, y1, y1 + rng.NextDouble() * 10, i});
  }
  auto expect = BruteForce(hs, vs);
  ExtVector<HSegment> hv(&dev);
  ExtVector<VSegment> vv(&dev);
  ASSERT_TRUE(hv.AppendAll(hs.data(), hs.size()).ok());
  ASSERT_TRUE(vv.AppendAll(vs.data(), vs.size()).ok());
  OrthogonalSegmentIntersection osi(&dev, kMem);
  ExtVector<IntersectionPair> out(&dev);
  ASSERT_TRUE(osi.Run(hv, vv, &out).ok());
  std::vector<IntersectionPair> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

// ----------------------------------------------------------------- Stabbing

TEST(BatchedStabbing, ReportMatchesBruteForce) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(12);
  std::vector<Interval> ivs;
  std::vector<StabQuery> qs;
  for (size_t i = 0; i < 800; ++i) {
    double lo = rng.NextDouble() * 100;
    ivs.push_back({lo, lo + rng.NextDouble() * 10, i});
    qs.push_back({rng.NextDouble() * 110, i});
  }
  std::vector<StabHit> expect;
  for (const auto& q : qs) {
    for (const auto& iv : ivs) {
      if (iv.lo <= q.x && q.x <= iv.hi) expect.push_back({q.id, iv.id});
    }
  }
  std::sort(expect.begin(), expect.end());

  ExtVector<Interval> iv(&dev);
  ExtVector<StabQuery> qv(&dev);
  ASSERT_TRUE(iv.AppendAll(ivs.data(), ivs.size()).ok());
  ASSERT_TRUE(qv.AppendAll(qs.data(), qs.size()).ok());
  ExtVector<StabHit> out(&dev);
  ASSERT_TRUE(BatchedStabbingReport(iv, qv, &out, kMem).ok());
  std::vector<StabHit> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

TEST(BatchedStabbing, CountMatchesReport) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(13);
  std::vector<Interval> ivs;
  std::vector<StabQuery> qs;
  for (size_t i = 0; i < 1200; ++i) {
    double lo = rng.NextDouble() * 50;
    ivs.push_back({lo, lo + rng.NextDouble() * 20, i});
  }
  for (size_t i = 0; i < 500; ++i) qs.push_back({rng.NextDouble() * 70, i});
  ExtVector<Interval> iv(&dev);
  ExtVector<StabQuery> qv(&dev);
  ASSERT_TRUE(iv.AppendAll(ivs.data(), ivs.size()).ok());
  ASSERT_TRUE(qv.AppendAll(qs.data(), qs.size()).ok());

  ExtVector<StabCount> counts(&dev);
  ASSERT_TRUE(BatchedStabbingCount(iv, qv, &counts, kMem).ok());
  std::vector<StabCount> cgot;
  ASSERT_TRUE(counts.ReadAll(&cgot).ok());
  ASSERT_EQ(cgot.size(), qs.size());
  std::map<uint64_t, uint64_t> count_by_id;
  for (auto& c : cgot) count_by_id[c.query_id] = c.count;
  for (const auto& q : qs) {
    uint64_t expect = 0;
    for (const auto& ivr : ivs) {
      if (ivr.lo <= q.x && q.x <= ivr.hi) expect++;
    }
    ASSERT_EQ(count_by_id[q.id], expect) << "query " << q.id;
  }
}

TEST(BatchedStabbing, CountingCostIsOutputIndependent) {
  // Dense instance: Z ~ N*Q/4 pairs, but counting must stay ~Sort(N).
  MemoryBlockDevice dev(kBlock);
  const size_t kN = 20000;
  std::vector<Interval> ivs;
  std::vector<StabQuery> qs;
  Rng rng(14);
  for (size_t i = 0; i < kN; ++i) {
    ivs.push_back({0.0, 50 + rng.NextDouble() * 50, i});  // huge overlap
    qs.push_back({rng.NextDouble() * 100, i});
  }
  ExtVector<Interval> iv(&dev);
  ExtVector<StabQuery> qv(&dev);
  ASSERT_TRUE(iv.AppendAll(ivs.data(), ivs.size()).ok());
  ASSERT_TRUE(qv.AppendAll(qs.data(), qs.size()).ok());
  ExtVector<StabCount> counts(&dev);
  IoProbe probe(dev);
  ASSERT_TRUE(BatchedStabbingCount(iv, qv, &counts, kMem).ok());
  // Far below Z/B ~ kN*kN/2/32; a small multiple of Sort(N) blocks.
  uint64_t n_blocks = kN * sizeof(Interval) / kBlock;
  EXPECT_LT(probe.delta().block_ios(), 30 * n_blocks);
}

// ---------------------------------------------------------------- Dominance

struct DomCase {
  size_t np, nq;
  uint64_t seed;
};

class DominanceSweep : public ::testing::TestWithParam<DomCase> {};

TEST_P(DominanceSweep, MatchesBruteForce) {
  const DomCase& c = GetParam();
  MemoryBlockDevice dev(kBlock);
  Rng rng(c.seed);
  std::vector<Point2> ps;
  std::vector<DomQuery> qs;
  for (size_t i = 0; i < c.np; ++i) {
    ps.push_back({rng.NextDouble() * 100, rng.NextDouble() * 100});
  }
  for (size_t i = 0; i < c.nq; ++i) {
    qs.push_back({rng.NextDouble() * 100, rng.NextDouble() * 100, i, 0});
  }
  ExtVector<Point2> pv(&dev);
  ExtVector<DomQuery> qv(&dev);
  ASSERT_TRUE(pv.AppendAll(ps.data(), ps.size()).ok());
  ASSERT_TRUE(qv.AppendAll(qs.data(), qs.size()).ok());
  DominanceCounter dc(&dev, kMem);
  ExtVector<DomCount> out(&dev);
  ASSERT_TRUE(dc.Run(pv, qv, &out).ok());
  std::vector<DomCount> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), c.nq);
  std::map<uint64_t, uint64_t> by_id;
  for (auto& d : got) by_id[d.id] = d.count;
  for (const auto& q : qs) {
    uint64_t expect = 0;
    for (const auto& p : ps) {
      if (p.x <= q.x && p.y <= q.y) expect++;
    }
    ASSERT_EQ(by_id[q.id], expect) << "query " << q.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, DominanceSweep,
                         ::testing::Values(DomCase{50, 50, 1},
                                           DomCase{2000, 500, 2},
                                           DomCase{5000, 2000, 3},
                                           DomCase{100, 3000, 4}));

TEST(Dominance, DuplicateCoordinatesInclusive) {
  MemoryBlockDevice dev(kBlock);
  std::vector<Point2> ps = {{5, 5}, {5, 5}, {5, 3}, {3, 5}, {7, 7}};
  std::vector<DomQuery> qs = {{5, 5, 0, 0}, {4.999, 5, 1, 0}, {7, 7, 2, 0}};
  ExtVector<Point2> pv(&dev);
  ExtVector<DomQuery> qv(&dev);
  ASSERT_TRUE(pv.AppendAll(ps.data(), ps.size()).ok());
  ASSERT_TRUE(qv.AppendAll(qs.data(), qs.size()).ok());
  DominanceCounter dc(&dev, kMem);
  ExtVector<DomCount> out(&dev);
  ASSERT_TRUE(dc.Run(pv, qv, &out).ok());
  std::vector<DomCount> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  std::map<uint64_t, uint64_t> by_id;
  for (auto& d : got) by_id[d.id] = d.count;
  EXPECT_EQ(by_id[0], 4u);
  EXPECT_EQ(by_id[1], 1u);
  EXPECT_EQ(by_id[2], 5u);
}

TEST(Dominance, AllPointsSameX) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(20);
  std::vector<Point2> ps;
  std::vector<DomQuery> qs;
  for (size_t i = 0; i < 3000; ++i) {
    ps.push_back({42.0, rng.NextDouble() * 100});
    qs.push_back({rng.NextDouble() * 100, rng.NextDouble() * 100, i, 0});
  }
  ExtVector<Point2> pv(&dev);
  ExtVector<DomQuery> qv(&dev);
  ASSERT_TRUE(pv.AppendAll(ps.data(), ps.size()).ok());
  ASSERT_TRUE(qv.AppendAll(qs.data(), qs.size()).ok());
  DominanceCounter dc(&dev, kMem);
  ExtVector<DomCount> out(&dev);
  ASSERT_TRUE(dc.Run(pv, qv, &out).ok());
  std::vector<DomCount> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  std::map<uint64_t, uint64_t> by_id;
  for (auto& d : got) by_id[d.id] = d.count;
  for (const auto& q : qs) {
    uint64_t expect = 0;
    for (const auto& p : ps) {
      if (p.x <= q.x && p.y <= q.y) expect++;
    }
    ASSERT_EQ(by_id[q.id], expect);
  }
}

}  // namespace
}  // namespace vem
