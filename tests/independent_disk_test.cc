// IndependentDiskDevice tests: the D-independent-heads plane.
//
//  - seeded randomized-cycling placement: deterministic per seed, D
//    consecutive allocations always hit D distinct disks;
//  - independent-head accounting: counted batches charge one parallel
//    step per wave of distinct disks, single transfers one step each;
//  - stats identity (parent AND children) for streamed scan/write and
//    the forecast-merged external sort: engine on vs off at the same
//    depth must match bit for bit (the two-plane contract), and every
//    depth-independent charge (block counts, bytes, per-consumed-block
//    reads, children) must match the per-block synchronous baseline.
//    parallel_writes is depth-DEPENDENT under the write-wave contract —
//    grouped flushes charge one step per wave of distinct disks — so
//    grouped configs must beat the per-block baseline, not equal it;
//  - forecast-merge equivalence: same output and block transfers as the
//    plain reader merge, strictly fewer parallel read steps on D > 1;
//  - faulty-child propagation on both planes;
//  - fault tolerance: transient-fault schedules absorbed by the retry
//    plane leave parent AND child IoStats bit-identical to the
//    fault-free run (engine off and on); quarantined disks are skipped
//    by randomized-cycling placement while their existing blocks stay
//    readable, and recovery evidence re-admits them;
//  - per-route governor history (one disk's waste does not disarm the
//    other heads) and the engine-saturation gate on staging grows
//    (governor depth grows and arbiter staging grows both refuse while
//    every worker is busy with a backlog).
//
// The redundancy plane (parity/mirror degraded mode, kill-a-disk-
// mid-sort stats identity, rebuild onto spares) is pinned in
// tests/redundancy_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ext_vector.h"
#include "io/faulty_device.h"
#include "io/file_block_device.h"
#include "io/independent_disk_device.h"
#include "io/io_engine.h"
#include "io/io_ring.h"
#include "io/memory_arbiter.h"
#include "io/memory_block_device.h"
#include "io/prefetch_governor.h"
#include "io/retry_policy.h"
#include "sort/external_sort.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kSeed = 0x5EED5EED;

std::string ScratchPath(const std::string& name) {
  return "/tmp/vem_independent_disk_" + name + ".bin";
}

// ------------------------------------------------------------ placement

TEST(IndependentDiskPlacement, SeededCyclingIsDeterministic) {
  IndependentDiskDevice a(4, kBlock, kSeed);
  IndependentDiskDevice b(4, kBlock, kSeed);
  IndependentDiskDevice c(4, kBlock, kSeed + 1);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    uint64_t ia = a.Allocate(), ib = b.Allocate(), ic = c.Allocate();
    ASSERT_EQ(ia, ib);
    EXPECT_EQ(a.disk_of(ia), b.disk_of(ib)) << "allocation " << i;
    any_diff = any_diff || a.disk_of(ia) != c.disk_of(ic);
  }
  // A different seed produces a different placement sequence.
  EXPECT_TRUE(any_diff);
}

TEST(IndependentDiskPlacement, EveryCycleHitsAllDisks) {
  IndependentDiskDevice dev(4, kBlock, kSeed);
  for (int cycle = 0; cycle < 16; ++cycle) {
    bool seen[4] = {false, false, false, false};
    for (int i = 0; i < 4; ++i) {
      uint64_t id = dev.Allocate();
      size_t d = dev.disk_of(id);
      ASSERT_LT(d, 4u);
      EXPECT_FALSE(seen[d]) << "disk repeated within a cycle";
      seen[d] = true;
    }
  }
}

// ----------------------------------------------------------- accounting

TEST(IndependentDiskAccounting, BatchedReadsChargeWaveSteps) {
  IndependentDiskDevice dev(4, kBlock, kSeed);
  std::vector<uint64_t> ids;
  std::vector<IoBuffer> bufs;
  std::vector<void*> ptrs;
  char block[kBlock] = {1};
  for (int i = 0; i < 8; ++i) {
    ids.push_back(dev.Allocate());
    ASSERT_TRUE(dev.Write(ids.back(), block).ok());
    bufs.push_back(AllocIoBuffer(kBlock));
    ptrs.push_back(bufs.back().get());
  }
  // Two full cycles of 4 distinct disks: the greedy packing needs
  // exactly 2 waves for the 8 consecutive blocks.
  EXPECT_EQ(dev.CountWaves(ids.data(), ids.size()), 2u);
  IoProbe probe(dev);
  ASSERT_TRUE(dev.ReadBatch(ids.data(), ptrs.data(), ids.size()).ok());
  IoStats d = probe.delta();
  EXPECT_EQ(d.block_reads, 8u);
  EXPECT_EQ(d.parallel_reads, 2u);  // the independent-disk win
  // Deferred id-aware accounting mirrors the counted batch exactly.
  IndependentDiskDevice dev2(4, kBlock, kSeed);
  std::vector<uint64_t> ids2;
  for (int i = 0; i < 8; ++i) {
    ids2.push_back(dev2.Allocate());
    ASSERT_TRUE(dev2.WriteUncounted(ids2.back(), block).ok());
  }
  IoProbe probe2(dev2);
  dev2.AccountReadBatch(ids2.data(), ids2.size());
  IoStats d2 = probe2.delta();
  EXPECT_EQ(d2.block_reads, 8u);
  EXPECT_EQ(d2.parallel_reads, 2u);
  for (size_t disk = 0; disk < 4; ++disk) {
    EXPECT_EQ(dev2.disk_stats(disk).block_reads, 2u);
  }
}

TEST(IndependentDiskAccounting, BatchedWritesChargeWaveSteps) {
  IndependentDiskDevice dev(4, kBlock, kSeed);
  std::vector<uint64_t> ids;
  std::vector<IoBuffer> bufs;
  std::vector<const void*> ptrs;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(dev.Allocate());
    bufs.push_back(AllocIoBuffer(kBlock, /*zeroed=*/true));
    ptrs.push_back(bufs.back().get());
  }
  // Two full cycles of 4 distinct disks: 2 waves, same as the read side.
  EXPECT_EQ(dev.CountWaves(ids.data(), ids.size()), 2u);
  IoProbe probe(dev);
  ASSERT_TRUE(dev.WriteBatch(ids.data(), ptrs.data(), ids.size()).ok());
  IoStats d = probe.delta();
  EXPECT_EQ(d.block_writes, 8u);
  EXPECT_EQ(d.parallel_writes, 2u);  // grouped write-behind's scatter win
  // Deferred id-aware accounting mirrors the counted batch exactly.
  IndependentDiskDevice dev2(4, kBlock, kSeed);
  std::vector<uint64_t> ids2;
  for (int i = 0; i < 8; ++i) ids2.push_back(dev2.Allocate());
  IoProbe probe2(dev2);
  dev2.AccountWriteBatch(ids2.data(), ids2.size());
  IoStats d2 = probe2.delta();
  EXPECT_EQ(d2.block_writes, 8u);
  EXPECT_EQ(d2.parallel_writes, 2u);
  for (size_t disk = 0; disk < 4; ++disk) {
    EXPECT_EQ(dev2.disk_stats(disk).block_writes, 2u);
  }
  // The per-block form keeps per-block steps (the pool's ghost anchor).
  IndependentDiskDevice dev3(4, kBlock, kSeed);
  std::vector<uint64_t> ids3;
  for (int i = 0; i < 8; ++i) ids3.push_back(dev3.Allocate());
  IoProbe probe3(dev3);
  dev3.AccountWriteIds(ids3.data(), ids3.size());
  EXPECT_EQ(probe3.delta().parallel_writes, 8u);
}

TEST(IndependentDiskAccounting, SingleTransfersChargeOneStepEach) {
  IndependentDiskDevice dev(4, kBlock, kSeed);
  char block[kBlock] = {7};
  IoProbe probe(dev);
  for (int i = 0; i < 6; ++i) {
    uint64_t id = dev.Allocate();
    ASSERT_TRUE(dev.Write(id, block).ok());
    ASSERT_TRUE(dev.Read(id, block).ok());
  }
  IoStats d = probe.delta();
  EXPECT_EQ(d.block_reads, 6u);
  EXPECT_EQ(d.parallel_reads, 6u);  // one head at a time: no batch, no win
  EXPECT_EQ(d.block_writes, 6u);
  EXPECT_EQ(d.parallel_writes, 6u);
}

// ------------------------------------------------------- stats identity

struct WorkloadCost {
  IoStats parent;
  std::vector<IoStats> children;
  std::vector<uint64_t> output;
};

/// Streamed write + scan + forecast-merged external sort on 4 file
/// children, under one of three configs. Placement is seed-fixed, so
/// every config sees the identical block layout.
WorkloadCost RunWorkload(const std::string& tag, size_t depth, bool engine_on,
                         bool governed,
                         IoBackend backend = IoBackend::kWorkerPool) {
  std::vector<std::unique_ptr<BlockDevice>> disks;
  for (int d = 0; d < 4; ++d) {
    auto child = std::make_unique<FileBlockDevice>(
        ScratchPath(tag + "_d" + std::to_string(d)), kBlock);
    EXPECT_TRUE(child->valid());
    disks.push_back(std::move(child));
  }
  IndependentDiskDevice dev(std::move(disks), kSeed);
  EXPECT_TRUE(dev.valid());
  EXPECT_TRUE(dev.SupportsUncounted());
  EXPECT_TRUE(dev.SupportsAsync());
  IoEngine engine(3, /*disk_inflight_cap=*/1, backend);
  PrefetchGovernor::Config gov_cfg;
  gov_cfg.budget_blocks = 128;
  gov_cfg.min_depth = 2;
  gov_cfg.max_depth = 16;
  gov_cfg.adapt_windows = 2;
  PrefetchGovernor governor(gov_cfg);
  if (engine_on) dev.set_io_engine(&engine);
  if (governed) dev.set_prefetch_governor(&governor);

  WorkloadCost cost;
  IoProbe probe(dev);
  Rng rng(11);
  ExtVector<uint64_t> input(&dev);
  input.set_prefetch_depth(depth);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (int i = 0; i < 6000; ++i) w.Append(rng.Next());
    EXPECT_TRUE(w.Finish().ok());
  }
  {
    std::vector<uint64_t> scanned;
    EXPECT_TRUE(input.ReadAll(&scanned).ok());
    EXPECT_EQ(scanned.size(), 6000u);
  }
  ExternalSorter<uint64_t> sorter(&dev, /*memory=*/8 * kBlock);
  sorter.set_prefetch_depth(depth);
  sorter.set_forecast_merge(true);
  ExtVector<uint64_t> out(&dev);
  EXPECT_TRUE(sorter.Sort(input, &out).ok());
  EXPECT_GT(sorter.metrics().initial_runs, 1u);
  EXPECT_TRUE(out.ReadAll(&cost.output).ok());
  cost.parent = probe.delta();
  for (size_t d = 0; d < dev.num_disks(); ++d) {
    cost.children.push_back(dev.disk_stats(d));
  }
  out.Destroy();
  input.Destroy();
  dev.set_io_engine(nullptr);
  dev.set_prefetch_governor(nullptr);
  return cost;
}

TEST(IndependentDiskIdentity, SyncEngineGovernedBitIdentical) {
  WorkloadCost sync = RunWorkload("sync", 0, false, false);
  WorkloadCost inline8 = RunWorkload("inline8", 8, false, false);
  WorkloadCost armed = RunWorkload("armed", 8, true, false);
  WorkloadCost governed = RunWorkload("governed", 8, true, true);
  EXPECT_TRUE(std::is_sorted(sync.output.begin(), sync.output.end()));
  EXPECT_EQ(sync.output, inline8.output);
  EXPECT_EQ(sync.output, armed.output);
  EXPECT_EQ(sync.output, governed.output);
  // The two-plane contract: engine on vs off at the same depth is
  // bit-identical — deferred accounting reproduces the counted path.
  EXPECT_EQ(inline8.parent, armed.parent);
  // Depth-independent charges match the per-block baseline everywhere:
  // physical transfers, bytes, and reads (streams charge reads per
  // consumed block; the forecast merge's waves follow placement, not
  // staging depth).
  auto expect_depth_independent_eq = [&](const WorkloadCost& c,
                                         const char* what) {
    EXPECT_EQ(sync.parent.block_reads, c.parent.block_reads) << what;
    EXPECT_EQ(sync.parent.block_writes, c.parent.block_writes) << what;
    EXPECT_EQ(sync.parent.bytes_read, c.parent.bytes_read) << what;
    EXPECT_EQ(sync.parent.bytes_written, c.parent.bytes_written) << what;
    EXPECT_EQ(sync.parent.parallel_reads, c.parent.parallel_reads) << what;
    ASSERT_EQ(sync.children.size(), c.children.size());
    for (size_t d = 0; d < sync.children.size(); ++d) {
      EXPECT_EQ(sync.children[d], c.children[d]) << what << " child " << d;
    }
  };
  expect_depth_independent_eq(inline8, "inline8");
  expect_depth_independent_eq(armed, "armed");
  expect_depth_independent_eq(governed, "governed");
  // The write-wave contract: grouped flushes scatter each group across
  // distinct disks, so depth-8 configs need strictly fewer parallel
  // write steps than the per-block baseline. The governed run's group
  // boundaries adapt at runtime, so only the direction is pinned.
  EXPECT_LT(armed.parent.parallel_writes, sync.parent.parallel_writes);
  EXPECT_LE(governed.parent.parallel_writes, sync.parent.parallel_writes);
}

// The transport never touches the cost model: the same armed workload on
// the io_uring backend must reproduce the worker-pool run bit for bit —
// parent, children, and output.
TEST(IndependentDiskIdentity, IoUringBackendBitIdenticalToWorkerPool) {
  if (!IoRing::CompiledIn() || !IoRing::KernelSupported()) {
    GTEST_SKIP() << "io_uring not available on this kernel/build";
  }
  WorkloadCost wp = RunWorkload("bk_wp", 8, true, false);
  WorkloadCost ur =
      RunWorkload("bk_ur", 8, true, false, IoBackend::kIoUring);
  EXPECT_EQ(wp.output, ur.output);
  EXPECT_EQ(wp.parent, ur.parent);
  ASSERT_EQ(wp.children.size(), ur.children.size());
  for (size_t d = 0; d < wp.children.size(); ++d) {
    EXPECT_EQ(wp.children[d], ur.children[d]) << "child " << d;
  }
}

// ------------------------------------------------------- forecast merge

TEST(ForecastMerge, EquivalentOutputFewerParallelSteps) {
  const size_t kItems = 20000;
  Rng rng(21);
  std::vector<uint64_t> data(kItems);
  for (auto& v : data) v = rng.Next();

  auto sort_with = [&](bool forecast, IoStats* delta,
                       ExternalSorter<uint64_t>::Metrics* metrics) {
    IndependentDiskDevice dev(4, kBlock, kSeed);
    ExtVector<uint64_t> input(&dev);
    EXPECT_TRUE(input.AppendAll(data.data(), data.size()).ok());
    ExternalSorter<uint64_t> sorter(&dev, /*memory=*/16 * kBlock);
    sorter.set_forecast_merge(forecast);
    ExtVector<uint64_t> out(&dev);
    IoProbe probe(dev);
    EXPECT_TRUE(sorter.Sort(input, &out).ok());
    *delta = probe.delta();
    *metrics = sorter.metrics();
    std::vector<uint64_t> result;
    EXPECT_TRUE(out.ReadAll(&result).ok());
    return result;
  };

  IoStats plain_cost, forecast_cost;
  ExternalSorter<uint64_t>::Metrics plain_m, forecast_m;
  std::vector<uint64_t> plain = sort_with(false, &plain_cost, &plain_m);
  std::vector<uint64_t> forecast =
      sort_with(true, &forecast_cost, &forecast_m);
  ASSERT_GT(plain_m.initial_runs, 1u);
  EXPECT_TRUE(std::is_sorted(plain.begin(), plain.end()));
  EXPECT_EQ(plain, forecast);
  // Same physical transfers, merge schedule included.
  EXPECT_EQ(plain_cost.block_reads, forecast_cost.block_reads);
  EXPECT_EQ(plain_cost.block_writes, forecast_cost.block_writes);
  // The forecast schedule batches refills into distinct-disk waves: the
  // merge's read steps shrink (run formation reads are unchanged).
  EXPECT_LT(forecast_cost.parallel_reads, plain_cost.parallel_reads);
}

TEST(ForecastMerge, SingleDiskDegeneratesToPlainCosts) {
  const size_t kItems = 8000;
  Rng rng(22);
  std::vector<uint64_t> data(kItems);
  for (auto& v : data) v = rng.Next();
  auto run = [&](bool forecast, IoStats* delta) {
    MemoryBlockDevice dev(kBlock);
    ExtVector<uint64_t> input(&dev);
    EXPECT_TRUE(input.AppendAll(data.data(), data.size()).ok());
    ExternalSorter<uint64_t> sorter(&dev, /*memory=*/8 * kBlock);
    sorter.set_forecast_merge(forecast);
    ExtVector<uint64_t> out(&dev);
    IoProbe probe(dev);
    EXPECT_TRUE(sorter.Sort(input, &out).ok());
    *delta = probe.delta();
    std::vector<uint64_t> result;
    EXPECT_TRUE(out.ReadAll(&result).ok());
    return result;
  };
  IoStats plain_cost, forecast_cost;
  std::vector<uint64_t> plain = run(false, &plain_cost);
  std::vector<uint64_t> forecast = run(true, &forecast_cost);
  EXPECT_EQ(plain, forecast);
  // Route 0 everywhere: every wave is one block, costs exactly match.
  EXPECT_EQ(plain_cost, forecast_cost);
}

// --------------------------------------------------------- faulty child

TEST(IndependentDiskFaults, FaultyChildPropagatesReadError) {
  MemoryBlockDevice faulty_inner(kBlock);
  std::vector<std::unique_ptr<BlockDevice>> disks;
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  disks.push_back(std::make_unique<FaultyBlockDevice>(&faulty_inner,
                                                      /*fail_read_at=*/10));
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  IndependentDiskDevice dev(std::move(disks), kSeed);
  ASSERT_TRUE(dev.valid());
  ASSERT_TRUE(dev.SupportsUncounted());

  Rng rng(31);
  std::vector<uint64_t> data(20000);
  for (auto& v : data) v = rng.Next();
  ExtVector<uint64_t> vec(&dev);
  ASSERT_TRUE(vec.AppendAll(data.data(), data.size(), /*depth=*/8).ok());
  std::vector<uint64_t> out;
  Status s = vec.ReadAll(&out, /*depth=*/8);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST(IndependentDiskFaults, FaultyChildPropagatesWriteError) {
  MemoryBlockDevice faulty_inner(kBlock);
  std::vector<std::unique_ptr<BlockDevice>> disks;
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  disks.push_back(std::make_unique<FaultyBlockDevice>(
      &faulty_inner, FaultyBlockDevice::kNever, /*fail_write_at=*/12));
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  IndependentDiskDevice dev(std::move(disks), kSeed);
  ASSERT_TRUE(dev.valid());

  Rng rng(32);
  std::vector<uint64_t> data(20000);
  for (auto& v : data) v = rng.Next();
  ExtVector<uint64_t> vec(&dev);
  Status s = vec.AppendAll(data.data(), data.size(), /*depth=*/8);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST(IndependentDiskFaults, ForecastMergeSurfacesReadError) {
  MemoryBlockDevice faulty_inner(kBlock);
  std::vector<std::unique_ptr<BlockDevice>> disks;
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  disks.push_back(std::make_unique<FaultyBlockDevice>(&faulty_inner,
                                                      /*fail_read_at=*/60));
  IndependentDiskDevice dev(std::move(disks), kSeed);
  ASSERT_TRUE(dev.valid());
  Rng rng(33);
  std::vector<uint64_t> data(20000);
  for (auto& v : data) v = rng.Next();
  ExtVector<uint64_t> input(&dev);
  ASSERT_TRUE(input.AppendAll(data.data(), data.size()).ok());
  ExternalSorter<uint64_t> sorter(&dev, /*memory=*/8 * kBlock);
  sorter.set_forecast_merge(true);
  ExtVector<uint64_t> out(&dev);
  Status s = sorter.Sort(input, &out);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

// ------------------------------------------------------ fault tolerance

/// Four Faulty-wrapped memory children so clean and faulted runs share
/// one stats structure; `inject` arms transient schedules on two heads.
struct FaultWorkloadResult {
  IoStats parent;
  std::vector<IoStats> children;
  std::vector<uint64_t> output;
};

FaultWorkloadResult RunTransientFaultWorkload(bool inject,
                                              RetryPolicy* policy,
                                              IoEngine* engine) {
  std::vector<std::unique_ptr<MemoryBlockDevice>> inners;
  std::vector<FaultyBlockDevice*> wrappers;
  std::vector<std::unique_ptr<BlockDevice>> disks;
  for (int d = 0; d < 4; ++d) {
    inners.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
    auto w = std::make_unique<FaultyBlockDevice>(inners.back().get());
    wrappers.push_back(w.get());
    disks.push_back(std::move(w));
  }
  IndependentDiskDevice dev(std::move(disks), kSeed);
  EXPECT_TRUE(dev.valid());
  if (engine != nullptr) dev.set_io_engine(engine);
  if (policy != nullptr) dev.set_retry_policy(policy);
  if (inject) {
    // Fail one read attempt twice and one write attempt twice on head 1,
    // one of each once on head 3 — all inside the sort's I/O schedule.
    wrappers[1]->SetTransientReadFault(/*at_read=*/50, /*times=*/2);
    wrappers[1]->SetTransientWriteFault(/*at_write=*/30, /*times=*/2);
    wrappers[3]->SetTransientReadFault(/*at_read=*/80, /*times=*/1);
    wrappers[3]->SetTransientWriteFault(/*at_write=*/40, /*times=*/1);
  }

  FaultWorkloadResult res;
  Rng rng(41);
  std::vector<uint64_t> data(20000);
  for (auto& v : data) v = rng.Next();
  IoProbe probe(dev);
  ExtVector<uint64_t> input(&dev);
  EXPECT_TRUE(input.AppendAll(data.data(), data.size(), /*depth=*/8).ok());
  ExternalSorter<uint64_t> sorter(&dev, /*memory=*/8 * kBlock);
  sorter.set_forecast_merge(true);
  sorter.set_prefetch_depth(8);
  ExtVector<uint64_t> out(&dev);
  Status s = sorter.Sort(input, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(sorter.metrics().initial_runs, 1u);
  EXPECT_TRUE(out.ReadAll(&res.output).ok());
  res.parent = probe.delta();
  for (size_t d = 0; d < dev.num_disks(); ++d) {
    res.children.push_back(dev.disk_stats(d));
  }
  dev.set_io_engine(nullptr);
  return res;
}

void ExpectBitIdentical(const FaultWorkloadResult& a,
                        const FaultWorkloadResult& b, const char* what) {
  EXPECT_EQ(a.output, b.output) << what;
  EXPECT_EQ(a.parent, b.parent) << what;
  ASSERT_EQ(a.children.size(), b.children.size());
  for (size_t d = 0; d < a.children.size(); ++d) {
    EXPECT_EQ(a.children[d], b.children[d]) << what << " child " << d;
  }
}

// The acceptance bar of the fault-tolerance plane: an external sort on
// independent disks completes under injected transient faults with
// logical IoStats — parent and every child — bit-identical to the
// fault-free run. Retries happen (the physical gauge shows them) but the
// cost model cannot see them.
TEST(IndependentDiskFaultTolerance, TransientFaultsSortStatsIdentical) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 3;
  cfg.base_us = 0;  // no wall-clock sleeping inside the test
  RetryPolicy policy(cfg);
  FaultWorkloadResult clean =
      RunTransientFaultWorkload(false, nullptr, nullptr);
  FaultWorkloadResult faulted =
      RunTransientFaultWorkload(true, &policy, nullptr);
  EXPECT_TRUE(std::is_sorted(clean.output.begin(), clean.output.end()));
  EXPECT_GE(policy.retries(), 6u);  // every scheduled fault really fired
  ExpectBitIdentical(clean, faulted, "sync");
}

TEST(IndependentDiskFaultTolerance, TransientFaultsWithEngineStatsIdentical) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 3;
  cfg.base_us = 0;
  RetryPolicy policy(cfg);
  IoEngine clean_eng(3);
  IoEngine fault_eng(3);
  FaultWorkloadResult clean =
      RunTransientFaultWorkload(false, nullptr, &clean_eng);
  FaultWorkloadResult faulted =
      RunTransientFaultWorkload(true, &policy, &fault_eng);
  EXPECT_GE(policy.retries(), 6u);
  ExpectBitIdentical(clean, faulted, "engine");
}

// Mid-run io_uring degradation: injected submission failures force the
// ring path to finish in-flight runs via the worker transfers and, after
// the failure limit, disable the ring for good — with the cost model and
// the data none the wiser.
TEST(IndependentDiskFaultTolerance, RingSubmitFailuresDegradeBitIdentical) {
  if (!IoRing::CompiledIn() || !IoRing::KernelSupported()) {
    GTEST_SKIP() << "io_uring not available on this kernel/build";
  }
  WorkloadCost wp = RunWorkload("ft_wp", 8, true, false);
  IoRing::ForceSubmitFailuresForTest(IoEngine::kRingFailureLimit);
  WorkloadCost ur =
      RunWorkload("ft_ur_fault", 8, true, false, IoBackend::kIoUring);
  IoRing::ForceSubmitFailuresForTest(0);
  EXPECT_EQ(wp.output, ur.output);
  EXPECT_EQ(wp.parent, ur.parent);
  ASSERT_EQ(wp.children.size(), ur.children.size());
  for (size_t d = 0; d < wp.children.size(); ++d) {
    EXPECT_EQ(wp.children[d], ur.children[d]) << "child " << d;
  }
}

TEST(IndependentDiskFaultTolerance, QuarantinedDiskDivertsPlacement) {
  IndependentDiskDevice dev(4, kBlock, kSeed);
  IoEngine eng(2);
  dev.set_io_engine(&eng);
  // Find a victim head and write one block onto it.
  uint64_t probe_id = dev.Allocate();
  size_t sick = dev.disk_of(probe_id);
  uint64_t tag = dev.EngineDiskTag(probe_id);
  std::vector<char> block(kBlock, 42);
  ASSERT_TRUE(dev.Write(probe_id, block.data()).ok());

  for (int i = 0; i < 3; ++i) eng.ReportDiskResult(tag, false);
  ASSERT_TRUE(eng.DiskQuarantined(tag));
  // New blocks avoid the sick head entirely...
  for (int i = 0; i < 32; ++i) {
    uint64_t id = dev.Allocate();
    EXPECT_NE(dev.disk_of(id), sick) << "allocation " << i;
  }
  // ...while its existing blocks stay readable (demand traffic is what
  // retry serves and what can lift the quarantine).
  std::vector<char> back(kBlock, 0);
  ASSERT_TRUE(dev.Read(probe_id, back.data()).ok());
  EXPECT_EQ(back[0], 42);

  // Recovery evidence re-admits the head to the placement cycle.
  for (int i = 0; i < 50 && eng.DiskQuarantined(tag); ++i) {
    eng.ReportDiskResult(tag, true, 1000);
  }
  ASSERT_FALSE(eng.DiskQuarantined(tag));
  bool used_again = false;
  for (int i = 0; i < 16 && !used_again; ++i) {
    used_again = dev.disk_of(dev.Allocate()) == sick;
  }
  EXPECT_TRUE(used_again);
  dev.set_io_engine(nullptr);
}

TEST(IndependentDiskFaultTolerance, AllDisksQuarantinedStillPlaces) {
  IndependentDiskDevice dev(2, kBlock, kSeed);
  IoEngine eng(1);
  dev.set_io_engine(&eng);
  uint64_t a = dev.Allocate();
  uint64_t b = dev.Allocate();
  for (int i = 0; i < 3; ++i) {
    eng.ReportDiskResult(dev.EngineDiskTag(a), false);
    eng.ReportDiskResult(dev.EngineDiskTag(b), false);
  }
  ASSERT_EQ(eng.quarantined_disks(), 2u);
  // With every head sick there is nowhere better: placement proceeds.
  uint64_t c = dev.Allocate();
  EXPECT_LT(dev.disk_of(c), 2u);
  std::vector<char> block(kBlock, 7);
  EXPECT_TRUE(dev.Write(c, block.data()).ok());
  dev.set_io_engine(nullptr);
}

// ------------------------------------------ per-route governor history

TEST(PerRouteGovernor, OneDisksWasteDoesNotDisarmOtherHeads) {
  PrefetchGovernor::Config cfg;
  cfg.budget_blocks = 128;
  cfg.min_depth = 2;
  cfg.max_depth = 16;
  cfg.initial_depth = 8;
  cfg.adapt_windows = 4;
  cfg.waste_disarm_ewma = 0.5;
  cfg.probe_every = 100;  // no probes inside this test
  uint64_t now = 0;
  PrefetchGovernor gov(cfg, [&now] { return now; });
  // Route 1 builds a wasteful record: a lease that throws its staging
  // away and dies young.
  {
    auto lease = gov.Arm(8, /*route=*/1);
    ASSERT_GT(lease->depth(), 0u);
    lease->ReportWindow(/*consumed=*/0, /*unused=*/8);
  }
  EXPECT_GT(gov.route_shape(1).waste_ewma, cfg.waste_disarm_ewma);
  // Route 1 is now refused; routes 2 and 0 still arm at full depth.
  auto refused = gov.Arm(8, /*route=*/1);
  EXPECT_EQ(refused->depth(), 0u);
  auto other = gov.Arm(8, /*route=*/2);
  EXPECT_EQ(other->depth(), 8u);
  auto unrouted = gov.Arm(8, /*route=*/0);
  EXPECT_EQ(unrouted->depth(), 8u);
}

// ------------------------------------------------ engine saturation gate

/// Holds the engine's only worker busy until released, with one more job
/// queued behind it: saturated() == true while held.
class EngineSaturator {
 public:
  explicit EngineSaturator(IoEngine* engine) : engine_(engine) {
    hold_ticket_ = engine->Submit([this] {
      std::unique_lock<std::mutex> lock(mu_);
      started_ = true;
      started_cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
      return Status::OK();
    });
    backlog_ticket_ = engine->Submit([] { return Status::OK(); });
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [this] { return started_; });
  }
  void Release() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
    (void)engine_->Wait(hold_ticket_);
    (void)engine_->Wait(backlog_ticket_);
  }
  ~EngineSaturator() {
    if (!released_) Release();
  }

 private:
  IoEngine* engine_;
  IoEngine::Ticket hold_ticket_, backlog_ticket_;
  std::mutex mu_;
  std::condition_variable cv_, started_cv_;
  bool started_ = false;
  bool released_ = false;
};

TEST(EngineSaturation, GaugeReflectsBusyWorkersAndBacklog) {
  IoEngine engine(1);
  EXPECT_FALSE(engine.saturated());
  {
    EngineSaturator sat(&engine);
    EXPECT_EQ(engine.busy_workers(), 1u);
    EXPECT_GE(engine.queued_jobs(), 1u);
    EXPECT_TRUE(engine.saturated());
    sat.Release();
  }
  EXPECT_FALSE(engine.saturated());
  EXPECT_EQ(engine.queued_jobs(), 0u);
}

TEST(EngineSaturation, GovernorRefusesDepthGrowsWhileSaturated) {
  PrefetchGovernor::Config cfg;
  cfg.budget_blocks = 128;
  cfg.min_depth = 2;
  cfg.max_depth = 16;
  cfg.initial_depth = 4;
  cfg.adapt_windows = 2;
  cfg.stall_floor_ns = 1000;
  uint64_t now = 0;
  PrefetchGovernor gov(cfg, [&now] { return now; });
  IoEngine engine(1);
  gov.AttachEngine(&engine);
  auto lease = gov.Arm(16);
  ASSERT_EQ(lease->depth(), 4u);
  {
    EngineSaturator sat(&engine);
    ASSERT_TRUE(engine.saturated());
    // A fully stalled period that would normally double depth.
    for (int w = 0; w < 2; ++w) {
      uint64_t t0 = lease->BeginWait();
      now += 5000;
      lease->EndWait(t0);
      lease->ReportWindow(lease->depth(), 0);
    }
    EXPECT_EQ(lease->depth(), 4u);  // held: workers are the bottleneck
    EXPECT_EQ(gov.saturation_skips(), 1u);
    sat.Release();
  }
  // Engine drained: the same evidence grows depth again.
  for (int w = 0; w < 2; ++w) {
    uint64_t t0 = lease->BeginWait();
    now += 5000;
    lease->EndWait(t0);
    lease->ReportWindow(lease->depth(), 0);
  }
  EXPECT_EQ(lease->depth(), 8u);
}

TEST(EngineSaturation, ArbiterDeniesStagingGrowsWhileSaturated) {
  MemoryArbiter::Config cfg;
  cfg.budget_bytes = 64 * 4096;
  cfg.block_size = 4096;
  uint64_t now = 0;
  MemoryArbiter arb(cfg, [&now] { return now; });
  IoEngine engine(1);
  arb.AttachEngine(&engine);
  auto staging = arb.LeaseStaging(16);
  {
    EngineSaturator sat(&engine);
    ASSERT_TRUE(engine.saturated());
    EXPECT_EQ(staging->RequestGrow(8), 0u);
    EXPECT_EQ(arb.saturation_denied_grows(), 1u);
    EXPECT_EQ(staging->target_blocks(), 16u);
    sat.Release();
  }
  // Free headroom exists; a drained engine no longer blocks the grow.
  EXPECT_EQ(staging->RequestGrow(8), 8u);
  EXPECT_EQ(staging->target_blocks(), 24u);
}

}  // namespace
}  // namespace vem
