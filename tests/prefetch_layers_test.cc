// Stats-identity tests for prefetch armed across the scan-bound
// algorithm layers: join, group-by, distribution sort, distribution
// sweep, BFS, connected components, list ranking, and the external
// priority queue. Each case runs the same workload twice on fresh file
// devices — synchronous (depth 0, no engine) vs armed (depth K, with or
// without an IoEngine, with or without an adaptive PrefetchGovernor) —
// and demands identical outputs and bit-identical IoStats: overlap is a
// wall-clock property, never a cost-model one, and the governor only
// ever moves depth. A striped-device case covers the forwarded
// uncounted plane on D-disk configurations, and FaultyDevice cases
// check that armed layers (including a striped device with a faulty
// child) still propagate device errors as Status.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/relational.h"
#include "geometry/segment_intersection.h"
#include "graph/bfs.h"
#include "graph/connected_components.h"
#include "graph/list_ranking.h"
#include "io/faulty_device.h"
#include "io/file_block_device.h"
#include "io/io_engine.h"
#include "io/memory_block_device.h"
#include "io/prefetch_governor.h"
#include "io/striped_device.h"
#include "search/external_pq.h"
#include "sort/distribution_sort.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr size_t kMem = 4096;

std::string ScratchPath(const char* name) {
  return std::string("/tmp/vem_prefetch_layers_") + name + ".bin";
}

/// One armed configuration: stream depth K, engine on/off, adaptive
/// governor on/off.
struct Cfg {
  size_t depth;
  bool engine;
  bool governor;
};
std::ostream& operator<<(std::ostream& os, const Cfg& c) {
  return os << "K" << c.depth << (c.engine ? "_engine" : "_sync")
            << (c.governor ? "_gov" : "");
}

PrefetchGovernor::Config SmallGovConfig() {
  PrefetchGovernor::Config cfg;
  cfg.budget_blocks = 64;  // tight: exercises refusals and partial grants
  cfg.min_depth = 2;
  cfg.max_depth = 16;
  cfg.adapt_windows = 2;  // adapt often: exercises grow/shrink mid-run
  return cfg;
}

class PrefetchLayers : public ::testing::TestWithParam<Cfg> {
 protected:
  /// Invoke `run(dev, depth)` twice — sync baseline vs the parameterized
  /// armed config — on fresh file devices and return both stats deltas.
  /// `run` must produce its comparable output via out-params it captures.
  template <typename Run>
  void RunBothConfigs(const char* tag, Run run, IoStats* sync_cost,
                      IoStats* armed_cost) {
    Cfg cfg = GetParam();
    {
      FileBlockDevice dev(ScratchPath((std::string(tag) + "_sync").c_str()),
                          kBlock);
      ASSERT_TRUE(dev.valid());
      IoProbe probe(dev);
      run(&dev, size_t{0}, /*armed=*/false);
      *sync_cost = probe.delta();
    }
    {
      FileBlockDevice dev(ScratchPath((std::string(tag) + "_armed").c_str()),
                          kBlock);
      ASSERT_TRUE(dev.valid());
      IoEngine engine(2);
      PrefetchGovernor governor(SmallGovConfig());
      if (cfg.engine) dev.set_io_engine(&engine);
      if (cfg.governor) dev.set_prefetch_governor(&governor);
      IoProbe probe(dev);
      run(&dev, cfg.depth, /*armed=*/true);
      *armed_cost = probe.delta();
      dev.set_io_engine(nullptr);
      dev.set_prefetch_governor(nullptr);
    }
  }
};

// ------------------------------------------------------------------- join

struct OrderRow {
  uint64_t order_id;
  uint64_t cust;
};
struct CustRow {
  uint64_t cust;
  uint32_t region;
};
struct JoinedRow {
  uint64_t order_id;
  uint64_t cust;
  uint32_t region;
  bool operator==(const JoinedRow&) const = default;
};

TEST_P(PrefetchLayers, SortMergeJoinIdentity) {
  Rng rng(71);
  const size_t kOrders = 6000, kCust = 300;
  std::vector<OrderRow> orders;
  std::vector<CustRow> custs;
  for (size_t i = 0; i < kOrders; ++i) {
    orders.push_back({i, rng.Uniform(kCust * 2)});
  }
  for (uint64_t c = 0; c < kCust; ++c) {
    custs.push_back({c, static_cast<uint32_t>(c % 7)});
  }
  std::vector<JoinedRow> out_sync, out_armed;
  IoStats sync_cost, armed_cost;
  auto run = [&](BlockDevice* dev, size_t depth, bool armed) {
    ExtVector<OrderRow> ov(dev);
    ExtVector<CustRow> cv(dev);
    ASSERT_TRUE(ov.AppendAll(orders.data(), orders.size()).ok());
    ASSERT_TRUE(cv.AppendAll(custs.data(), custs.size()).ok());
    ExtVector<JoinedRow> out(dev);
    Status s = SortMergeJoin<OrderRow, CustRow, JoinedRow, uint64_t>(
        ov, cv, &out, kMem, [](const OrderRow& o) { return o.cust; },
        [](const CustRow& c) { return c.cust; },
        [](const OrderRow& o, const CustRow& c) {
          return JoinedRow{o.order_id, o.cust, c.region};
        },
        depth);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(out.ReadAll(armed ? &out_armed : &out_sync).ok());
  };
  RunBothConfigs("join", run, &sync_cost, &armed_cost);
  EXPECT_EQ(out_sync, out_armed);
  EXPECT_FALSE(out_sync.empty());
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
}

// --------------------------------------------------------------- group-by

struct SaleRow {
  uint32_t region;
  uint32_t amount;
};
struct RegionStat {
  uint32_t region;
  uint64_t total;
  uint64_t count;
  bool operator==(const RegionStat&) const = default;
};

TEST_P(PrefetchLayers, GroupByAggregateIdentity) {
  Rng rng(72);
  std::vector<SaleRow> rows;
  for (size_t i = 0; i < 9000; ++i) {
    rows.push_back({static_cast<uint32_t>(rng.Uniform(40)),
                    static_cast<uint32_t>(rng.Uniform(1000))});
  }
  struct Acc {
    uint64_t sum = 0;
    uint64_t n = 0;
  };
  std::vector<RegionStat> out_sync, out_armed;
  IoStats sync_cost, armed_cost;
  auto run = [&](BlockDevice* dev, size_t depth, bool armed) {
    ExtVector<SaleRow> rv(dev);
    ASSERT_TRUE(rv.AppendAll(rows.data(), rows.size()).ok());
    ExtVector<RegionStat> out(dev);
    Status s = GroupByAggregate<SaleRow, uint32_t, Acc, RegionStat>(
        rv, &out, kMem, [](const SaleRow& r) { return r.region; },
        [](const uint32_t&) { return Acc{}; },
        [](Acc* a, const SaleRow& r) {
          a->sum += r.amount;
          a->n++;
        },
        [](const uint32_t& k, const Acc& a) {
          return RegionStat{k, a.sum, a.n};
        },
        depth);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(out.ReadAll(armed ? &out_armed : &out_sync).ok());
  };
  RunBothConfigs("groupby", run, &sync_cost, &armed_cost);
  EXPECT_EQ(out_sync, out_armed);
  EXPECT_EQ(out_sync.size(), 40u);
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
}

// ------------------------------------------------------ distribution sort

TEST_P(PrefetchLayers, DistributionSortIdentity) {
  Rng rng(73);
  std::vector<uint64_t> data(30000);
  for (auto& v : data) v = rng.Uniform(5000);  // duplicates galore
  std::vector<uint64_t> want = data;
  std::sort(want.begin(), want.end());

  std::vector<uint64_t> out_sync, out_armed;
  IoStats sync_cost, armed_cost;
  auto run = [&](BlockDevice* dev, size_t depth, bool armed) {
    ExtVector<uint64_t> input(dev);
    ASSERT_TRUE(input.AppendAll(data.data(), data.size()).ok());
    DistributionSorter<uint64_t> sorter(dev, kMem);
    sorter.set_prefetch_depth(depth);
    ExtVector<uint64_t> out(dev);
    ASSERT_TRUE(sorter.Sort(input, &out).ok());
    ASSERT_TRUE(out.ReadAll(armed ? &out_armed : &out_sync).ok());
  };
  RunBothConfigs("distsort", run, &sync_cost, &armed_cost);
  EXPECT_EQ(out_sync, want);
  EXPECT_EQ(out_armed, want);
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
}

// ----------------------------------------------------- distribution sweep

TEST_P(PrefetchLayers, SegmentSweepIdentity) {
  Rng rng(74);
  const size_t n = 1200;
  std::vector<HSegment> hs;
  std::vector<VSegment> vs;
  for (size_t i = 0; i < n; ++i) {
    double x = rng.NextDouble() * 100, y = rng.NextDouble() * 100;
    hs.push_back({y, x, x + rng.NextDouble() * 8, i});
    double vx = rng.NextDouble() * 100, vy = rng.NextDouble() * 100;
    vs.push_back({vx, vy, vy + rng.NextDouble() * 8, i});
  }
  std::vector<IntersectionPair> out_sync, out_armed;
  IoStats sync_cost, armed_cost;
  auto run = [&](BlockDevice* dev, size_t depth, bool armed) {
    ExtVector<HSegment> hv(dev);
    ExtVector<VSegment> vv(dev);
    ASSERT_TRUE(hv.AppendAll(hs.data(), hs.size()).ok());
    ASSERT_TRUE(vv.AppendAll(vs.data(), vs.size()).ok());
    OrthogonalSegmentIntersection osi(dev, kMem);
    osi.set_prefetch_depth(depth);
    ExtVector<IntersectionPair> out(dev);
    ASSERT_TRUE(osi.Run(hv, vv, &out).ok());
    std::vector<IntersectionPair>* sink = armed ? &out_armed : &out_sync;
    ASSERT_TRUE(out.ReadAll(sink).ok());
    std::sort(sink->begin(), sink->end());
  };
  RunBothConfigs("sweep", run, &sync_cost, &armed_cost);
  EXPECT_EQ(out_sync, out_armed);
  EXPECT_FALSE(out_sync.empty());
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
}

// -------------------------------------------------------------------- BFS

TEST_P(PrefetchLayers, ExternalBfsIdentity) {
  const uint64_t v = 1500;
  Rng rng(75);
  std::vector<Edge> edge_list;
  for (uint64_t i = 0; i < v; ++i) edge_list.push_back({i, (i + 1) % v});
  for (size_t i = 0; i < 2 * v; ++i) {
    edge_list.push_back({rng.Uniform(v), rng.Uniform(v)});
  }
  std::vector<VertexDist> out_sync, out_armed;
  IoStats sync_cost, armed_cost;
  auto run = [&](BlockDevice* dev, size_t depth, bool armed) {
    BufferPool pool(dev, 8);
    ExtVector<Edge> edges(dev);
    ASSERT_TRUE(edges.AppendAll(edge_list.data(), edge_list.size()).ok());
    ExtGraph g(dev, &pool);
    ASSERT_TRUE(g.Build(edges, v, kMem, /*symmetrize=*/true).ok());
    ExternalBfs bfs(dev, kMem);
    bfs.set_prefetch_depth(depth);
    ExtVector<VertexDist> out(dev);
    ASSERT_TRUE(bfs.Run(g, 0, &out).ok());
    std::vector<VertexDist>* sink = armed ? &out_armed : &out_sync;
    ASSERT_TRUE(out.ReadAll(sink).ok());
    ASSERT_TRUE(pool.FlushAll().ok());
  };
  RunBothConfigs("bfs", run, &sync_cost, &armed_cost);
  ASSERT_EQ(out_sync.size(), out_armed.size());
  EXPECT_EQ(out_sync.size(), v);  // the cycle connects everything
  for (size_t i = 0; i < out_sync.size(); ++i) {
    EXPECT_EQ(out_sync[i].v, out_armed[i].v) << i;
    EXPECT_EQ(out_sync[i].dist, out_armed[i].dist) << i;
  }
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
}

// ----------------------------------------------------- connected components

TEST_P(PrefetchLayers, ConnectedComponentsIdentity) {
  const uint64_t n = 1200;
  Rng rng(76);
  std::vector<Edge> edge_list;
  // Three chains plus random intra-chain chords: 3 components.
  for (uint64_t c = 0; c < 3; ++c) {
    for (uint64_t i = c; i + 3 < n; i += 3) edge_list.push_back({i, i + 3});
  }
  std::vector<VertexLabel> out_sync, out_armed;
  IoStats sync_cost, armed_cost;
  auto run = [&](BlockDevice* dev, size_t depth, bool armed) {
    ExtVector<Edge> edges(dev);
    ASSERT_TRUE(edges.AppendAll(edge_list.data(), edge_list.size()).ok());
    ConnectedComponents cc(dev, kMem);
    cc.set_prefetch_depth(depth);
    ExtVector<VertexLabel> out(dev);
    ASSERT_TRUE(cc.Run(edges, n, &out).ok());
    std::vector<VertexLabel>* sink = armed ? &out_armed : &out_sync;
    ASSERT_TRUE(out.ReadAll(sink).ok());
  };
  RunBothConfigs("cc", run, &sync_cost, &armed_cost);
  ASSERT_EQ(out_sync.size(), out_armed.size());
  for (size_t i = 0; i < out_sync.size(); ++i) {
    EXPECT_EQ(out_sync[i].v, out_armed[i].v) << i;
    EXPECT_EQ(out_sync[i].label, out_armed[i].label) << i;
    EXPECT_EQ(out_armed[i].label, out_armed[i].v % 3) << i;
  }
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
}

// ------------------------------------------------------------ list ranking

TEST_P(PrefetchLayers, ListRankingIdentity) {
  const uint64_t n = 4000;
  Rng rng(77);
  // A random permutation as one linked list.
  std::vector<uint64_t> perm(n);
  for (uint64_t i = 0; i < n; ++i) perm[i] = i;
  for (uint64_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.Uniform(i + 1)]);
  }
  std::vector<ListNode> nodes(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t succ = (i + 1 < n) ? perm[i + 1] : kNoVertex;
    nodes[perm[i]] = ListNode{perm[i], succ, 1};
  }
  std::vector<ListRank> out_sync, out_armed;
  IoStats sync_cost, armed_cost;
  auto run = [&](BlockDevice* dev, size_t depth, bool armed) {
    ExtVector<ListNode> nv(dev);
    std::vector<ListNode> by_id(n);
    for (uint64_t i = 0; i < n; ++i) by_id[nodes[i].id] = nodes[i];
    ASSERT_TRUE(nv.AppendAll(by_id.data(), by_id.size()).ok());
    ListRanker ranker(dev, kMem);
    ranker.set_prefetch_depth(depth);
    ExtVector<ListRank> out(dev);
    ASSERT_TRUE(ranker.Rank(nv, &out).ok());
    std::vector<ListRank>* sink = armed ? &out_armed : &out_sync;
    ASSERT_TRUE(out.ReadAll(sink).ok());
  };
  RunBothConfigs("listrank", run, &sync_cost, &armed_cost);
  ASSERT_EQ(out_sync.size(), out_armed.size());
  EXPECT_EQ(out_sync.size(), n);
  for (size_t i = 0; i < out_sync.size(); ++i) {
    EXPECT_EQ(out_sync[i].id, out_armed[i].id) << i;
    EXPECT_EQ(out_sync[i].rank, out_armed[i].rank) << i;
  }
  // Spot-check correctness: head has rank n, tail rank 1.
  EXPECT_EQ(out_sync[perm[0]].rank, n);
  EXPECT_EQ(out_sync[perm[n - 1]].rank, 1u);
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
}

// -------------------------------------------------- external priority queue

TEST_P(PrefetchLayers, ExternalPqIdentity) {
  Rng rng(78);
  std::vector<uint64_t> data(25000);
  for (auto& v : data) v = rng.Next() % 100000;
  std::vector<uint64_t> want = data;
  std::sort(want.begin(), want.end());

  std::vector<uint64_t> out_sync, out_armed;
  size_t spills_sync = 0, spills_armed = 0;
  IoStats sync_cost, armed_cost;
  auto run = [&](BlockDevice* dev, size_t depth, bool armed) {
    ExternalPriorityQueue<uint64_t> pq(dev, kMem / 2);
    pq.set_prefetch_depth(depth);
    for (uint64_t v : data) ASSERT_TRUE(pq.Push(v).ok());
    std::vector<uint64_t>* sink = armed ? &out_armed : &out_sync;
    sink->reserve(data.size());
    uint64_t v;
    while (!pq.empty()) {
      ASSERT_TRUE(pq.Pop(&v).ok());
      sink->push_back(v);
    }
    (armed ? spills_armed : spills_sync) = pq.spills();
  };
  RunBothConfigs("pq", run, &sync_cost, &armed_cost);
  EXPECT_EQ(out_sync, want);
  EXPECT_EQ(out_armed, want);
  EXPECT_GT(spills_sync, 0u);  // the workload actually went external
  EXPECT_EQ(spills_sync, spills_armed);
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
}

// -------------------------------------------------- armed empty-input edge

TEST_P(PrefetchLayers, EmptyInputsStayWellBehaved) {
  Cfg cfg = GetParam();
  FileBlockDevice dev(ScratchPath("empty"), kBlock);
  ASSERT_TRUE(dev.valid());
  IoEngine engine(2);
  if (cfg.engine) dev.set_io_engine(&engine);

  ExtVector<uint64_t> input(&dev);
  DistributionSorter<uint64_t> sorter(&dev, kMem);
  sorter.set_prefetch_depth(cfg.depth);
  ExtVector<uint64_t> out(&dev);
  ASSERT_TRUE(sorter.Sort(input, &out).ok());
  EXPECT_EQ(out.size(), 0u);

  ExtVector<OrderRow> ov(&dev);
  ExtVector<CustRow> cv(&dev);
  ExtVector<JoinedRow> jout(&dev);
  Status s = SortMergeJoin<OrderRow, CustRow, JoinedRow, uint64_t>(
      ov, cv, &jout, kMem, [](const OrderRow& o) { return o.cust; },
      [](const CustRow& c) { return c.cust; },
      [](const OrderRow& o, const CustRow& c) {
        return JoinedRow{o.order_id, o.cust, c.region};
      },
      cfg.depth);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(jout.size(), 0u);
  dev.set_io_engine(nullptr);
}

// ----------------------------------------------------- striped device

/// Build a D=4 striped device over fresh file-backed children. With the
/// forwarded uncounted plane, armed streams overlap on the D-disk
/// configuration instead of silently falling back to synchronous — and
/// parent AND per-child stats must stay bit-identical to the sync run.
std::unique_ptr<StripedDevice> MakeStripedFiles(const char* tag) {
  std::vector<std::unique_ptr<BlockDevice>> disks;
  for (int d = 0; d < 4; ++d) {
    auto child = std::make_unique<FileBlockDevice>(
        ScratchPath((std::string(tag) + "_d" + std::to_string(d)).c_str()),
        kBlock);
    if (!child->valid()) return nullptr;
    disks.push_back(std::move(child));
  }
  return std::make_unique<StripedDevice>(std::move(disks));
}

TEST_P(PrefetchLayers, StripedDeviceIdentity) {
  Cfg cfg = GetParam();
  Rng rng(79);
  std::vector<uint64_t> data(30000);
  for (auto& v : data) v = rng.Uniform(5000);
  std::vector<uint64_t> want = data;
  std::sort(want.begin(), want.end());

  std::vector<uint64_t> out_sync, out_armed;
  IoStats sync_cost, armed_cost, sync_disk0, armed_disk0;
  auto run = [&](StripedDevice* dev, size_t depth, bool armed) {
    ASSERT_TRUE(dev->SupportsUncounted());
    ExtVector<uint64_t> input(dev);
    ASSERT_TRUE(input.AppendAll(data.data(), data.size()).ok());
    DistributionSorter<uint64_t> sorter(dev, 4 * kMem);
    sorter.set_prefetch_depth(depth);
    ExtVector<uint64_t> out(dev);
    ASSERT_TRUE(sorter.Sort(input, &out).ok());
    ASSERT_TRUE(out.ReadAll(armed ? &out_armed : &out_sync).ok());
  };
  {
    auto dev = MakeStripedFiles("striped_sync");
    ASSERT_NE(dev, nullptr);
    ASSERT_TRUE(dev->valid());
    IoProbe probe(*dev);
    run(dev.get(), 0, /*armed=*/false);
    sync_cost = probe.delta();
    sync_disk0 = dev->disk_stats(0);
  }
  {
    auto dev = MakeStripedFiles("striped_armed");
    ASSERT_NE(dev, nullptr);
    ASSERT_TRUE(dev->valid());
    IoEngine engine(2);
    PrefetchGovernor governor(SmallGovConfig());
    if (cfg.engine) dev->set_io_engine(&engine);
    if (cfg.governor) dev->set_prefetch_governor(&governor);
    IoProbe probe(*dev);
    run(dev.get(), cfg.depth, /*armed=*/true);
    armed_cost = probe.delta();
    armed_disk0 = dev->disk_stats(0);
    dev->set_io_engine(nullptr);
    dev->set_prefetch_governor(nullptr);
  }
  EXPECT_EQ(out_sync, want);
  EXPECT_EQ(out_armed, want);
  EXPECT_TRUE(sync_cost == armed_cost)
      << "sync " << sync_cost.ToString() << " vs armed "
      << armed_cost.ToString();
  // Deferred accounting must reach the children too: disk 0 saw the
  // same traffic in both runs, and one parent parallel step moved D=4
  // physical blocks.
  EXPECT_TRUE(sync_disk0 == armed_disk0)
      << "disk0 sync " << sync_disk0.ToString() << " vs armed "
      << armed_disk0.ToString();
  EXPECT_EQ(armed_cost.block_reads, 4 * armed_cost.parallel_reads);
  EXPECT_EQ(armed_cost.block_writes, 4 * armed_cost.parallel_writes);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PrefetchLayers,
    ::testing::Values(Cfg{2, false, false}, Cfg{4, true, false},
                      Cfg{16, true, false}, Cfg{4, false, true},
                      Cfg{16, true, true}),
    [](const ::testing::TestParamInfo<Cfg>& info) {
      return "K" + std::to_string(info.param.depth) +
             (info.param.engine ? "_engine" : "_sync") +
             (info.param.governor ? "_gov" : "");
    });

// --------------------------------------------------- error propagation

// Armed layers must surface injected IOErrors as Status — no crash, no
// silent truncation — whether the fault fires on the counted plane or
// inside a speculative window fill (FaultyBlockDevice forwards the
// uncounted plane of its inner device with the same injection schedule).
TEST(PrefetchLayersFaults, DistributionSortPropagatesReadError) {
  MemoryBlockDevice inner(kBlock);
  Rng rng(80);
  std::vector<uint64_t> data(20000);
  for (auto& v : data) v = rng.Next();
  FaultyBlockDevice dev(&inner, /*fail_read_at=*/50);
  DistributionSorter<uint64_t> sorter(&dev, kMem);
  sorter.set_prefetch_depth(8);
  ExtVector<uint64_t> input(&dev);
  ASSERT_TRUE(input.AppendAll(data.data(), data.size()).ok());
  ExtVector<uint64_t> out(&dev);
  Status s = sorter.Sort(input, &out);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST(PrefetchLayersFaults, JoinPropagatesWriteError) {
  MemoryBlockDevice inner(kBlock);
  // Loading the two tables costs ~320 writes; fail the 400th so the
  // injection fires inside the join's sort phase, after a clean load.
  FaultyBlockDevice dev(&inner, FaultyBlockDevice::kNever,
                        /*fail_write_at=*/400);
  Rng rng(81);
  std::vector<OrderRow> orders;
  for (size_t i = 0; i < 5000; ++i) orders.push_back({i, rng.Uniform(100)});
  std::vector<CustRow> custs;
  for (uint64_t c = 0; c < 100; ++c) {
    custs.push_back({c, static_cast<uint32_t>(c)});
  }
  ExtVector<OrderRow> ov(&dev);
  ExtVector<CustRow> cv(&dev);
  ExtVector<JoinedRow> out(&dev);
  ASSERT_TRUE(ov.AppendAll(orders.data(), orders.size()).ok());
  ASSERT_TRUE(cv.AppendAll(custs.data(), custs.size()).ok());
  Status s = SortMergeJoin<OrderRow, CustRow, JoinedRow, uint64_t>(
      ov, cv, &out, kMem, [](const OrderRow& o) { return o.cust; },
      [](const CustRow& c) { return c.cust; },
      [](const OrderRow& o, const CustRow& c) {
        return JoinedRow{o.order_id, o.cust, c.region};
      },
      /*prefetch_depth=*/8);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST(PrefetchLayersFaults, ExternalPqPropagatesReadError) {
  MemoryBlockDevice inner(kBlock);
  FaultyBlockDevice dev(&inner, /*fail_read_at=*/20);
  ExternalPriorityQueue<uint64_t> pq(&dev, 1024);
  pq.set_prefetch_depth(4);
  Rng rng(82);
  Status s = Status::OK();
  for (size_t i = 0; i < 20000 && s.ok(); ++i) s = pq.Push(rng.Next());
  uint64_t v;
  while (s.ok() && !pq.empty()) s = pq.Pop(&v);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

// A striped device with one faulty child: the injected error must travel
// child -> striped uncounted plane -> armed stream -> Status, for both
// directions.
TEST(PrefetchLayersFaults, StripedFaultyChildPropagatesReadError) {
  MemoryBlockDevice faulty_inner(kBlock);
  std::vector<std::unique_ptr<BlockDevice>> disks;
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  disks.push_back(std::make_unique<FaultyBlockDevice>(&faulty_inner,
                                                      /*fail_read_at=*/30));
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  StripedDevice dev(std::move(disks));
  ASSERT_TRUE(dev.valid());
  ASSERT_TRUE(dev.SupportsUncounted());

  Rng rng(83);
  std::vector<uint64_t> data(20000);
  for (auto& v : data) v = rng.Next();
  ExtVector<uint64_t> vec(&dev);
  ASSERT_TRUE(vec.AppendAll(data.data(), data.size(), /*depth=*/8).ok());
  std::vector<uint64_t> out;
  Status s = vec.ReadAll(&out, /*depth=*/8);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST(PrefetchLayersFaults, StripedFaultyChildPropagatesWriteError) {
  MemoryBlockDevice faulty_inner(kBlock);
  std::vector<std::unique_ptr<BlockDevice>> disks;
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  disks.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
  disks.push_back(std::make_unique<FaultyBlockDevice>(
      &faulty_inner, FaultyBlockDevice::kNever, /*fail_write_at=*/40));
  StripedDevice dev(std::move(disks));
  ASSERT_TRUE(dev.valid());

  Rng rng(84);
  std::vector<uint64_t> data(20000);
  for (auto& v : data) v = rng.Next();
  ExtVector<uint64_t> vec(&dev);
  Status s = vec.AppendAll(data.data(), data.size(), /*depth=*/8);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

}  // namespace
}  // namespace vem
