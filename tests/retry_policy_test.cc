// Fault-tolerance plane tests: the transient/permanent Status taxonomy,
// RetryPolicy backoff math under a fake clock, retry wiring through the
// BlockDevice batch loops, the IoEngine's per-disk health monitor and
// quarantine, the hung-I/O watchdog, and mid-run io_uring degradation.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "io/faulty_device.h"
#include "io/io_engine.h"
#include "io/io_ring.h"
#include "io/memory_arbiter.h"
#include "io/memory_block_device.h"
#include "io/prefetch_governor.h"
#include "io/retry_policy.h"
#include "util/options.h"
#include "util/status.h"

namespace vem {
namespace {

// ------------------------------------------------------------- taxonomy

TEST(StatusTaxonomy, TransientCodes) {
  EXPECT_TRUE(Status::Busy("b").IsTransient());
  EXPECT_TRUE(Status::Unavailable("u").IsTransient());
  EXPECT_FALSE(Status::IOError("io").IsTransient());
  EXPECT_FALSE(Status::Corruption("c").IsTransient());
  EXPECT_FALSE(Status::OK().IsTransient());
  // Timeout is deliberately NOT transient: the watchdog fires after the
  // lower layers already retried, and re-issuing races the straggler.
  Status t = Status::Timeout("deadline");
  EXPECT_TRUE(t.IsTimeout());
  EXPECT_FALSE(t.IsTransient());
  EXPECT_NE(t.ToString().find("Timeout"), std::string::npos);
  Status u = Status::Unavailable("queue full");
  EXPECT_TRUE(u.IsUnavailable());
  EXPECT_NE(u.ToString().find("Unavailable"), std::string::npos);
}

TEST(StatusTaxonomy, StatusFromErrnoClassifiesAndNames) {
  Status eio = StatusFromErrno("pread", 4096, EIO);
  EXPECT_TRUE(eio.IsIOError());
  EXPECT_FALSE(eio.IsTransient());
  EXPECT_NE(eio.ToString().find("EIO"), std::string::npos);
  EXPECT_NE(eio.ToString().find("at offset 4096"), std::string::npos);
  EXPECT_NE(eio.ToString().find("pread"), std::string::npos);

  Status again = StatusFromErrno("pwrite", 0, EAGAIN);
  EXPECT_TRUE(again.IsUnavailable());
  EXPECT_TRUE(again.IsTransient());
  EXPECT_NE(again.ToString().find("EAGAIN"), std::string::npos);

  EXPECT_TRUE(StatusFromErrno("mmap", -1, ENOMEM).IsTransient());
  EXPECT_TRUE(StatusFromErrno("io_uring_enter", -1, EBUSY).IsTransient());
  EXPECT_FALSE(StatusFromErrno("pread", -1, EBADF).IsTransient());

  // offset < 0 omits the offset clause.
  Status noff = StatusFromErrno("fsync", -1, EIO);
  EXPECT_EQ(noff.ToString().find("at offset"), std::string::npos);
}

// ------------------------------------------------------------ backoff math

TEST(RetryPolicy, BackoffBoundsAndDoubling) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 10;
  cfg.base_us = 100;
  cfg.max_us = 2000;
  RetryPolicy p(cfg);
  uint64_t expected_cap_us = 100;
  for (size_t attempt = 1; attempt <= 10; ++attempt) {
    uint64_t ns = p.BackoffNs(/*key=*/7, attempt);
    uint64_t cap_ns = expected_cap_us * 1000;
    EXPECT_GE(ns, cap_ns / 2) << "attempt " << attempt;
    EXPECT_LT(ns, cap_ns) << "attempt " << attempt;
    expected_cap_us = std::min<uint64_t>(expected_cap_us * 2, cfg.max_us);
  }
  EXPECT_EQ(p.BackoffNs(7, 0), 0u);
}

TEST(RetryPolicy, JitterIsDeterministicPerKey) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 4;
  RetryPolicy a(cfg);
  RetryPolicy b(cfg);
  bool some_difference = false;
  for (size_t attempt = 1; attempt <= 4; ++attempt) {
    // Same (key, attempt) -> same backoff, across policy instances: the
    // jitter is a pure hash, so fault-injection runs are reproducible.
    EXPECT_EQ(a.BackoffNs(11, attempt), b.BackoffNs(11, attempt));
    EXPECT_EQ(a.BackoffNs(12, attempt), b.BackoffNs(12, attempt));
    if (a.BackoffNs(11, attempt) != a.BackoffNs(12, attempt)) {
      some_difference = true;
    }
  }
  // Different keys decorrelate (at least one attempt differs).
  EXPECT_TRUE(some_difference);
}

// Fake clock + sleep recorder: tests run with zero wall-clock sleeping.
struct FakeTime {
  uint64_t now_ns = 0;
  std::vector<uint64_t> sleeps;
  RetryPolicy::Clock clock() {
    return [this] { return now_ns; };
  }
  RetryPolicy::Sleeper sleeper() {
    return [this](uint64_t ns) {
      sleeps.push_back(ns);
      now_ns += ns;
    };
  }
};

TEST(RetryPolicy, RetriesTransientUntilSuccess) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 5;
  FakeTime ft;
  RetryPolicy p(cfg, ft.clock(), ft.sleeper());
  int calls = 0;
  int fail_observed = 0;
  Status s = p.Run(
      /*key=*/3,
      [&] {
        calls++;
        return calls <= 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      [&](const Status& att) {
        fail_observed++;
        EXPECT_TRUE(att.IsTransient());
      });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(fail_observed, 3);
  EXPECT_EQ(p.retries(), 3u);
  ASSERT_EQ(ft.sleeps.size(), 3u);
  uint64_t total = 0;
  for (size_t i = 0; i < ft.sleeps.size(); ++i) {
    EXPECT_EQ(ft.sleeps[i], p.BackoffNs(3, i + 1));
    total += ft.sleeps[i];
  }
  // The fake clock advanced exactly by the sleeps, so the backoff gauge
  // records the whole spend.
  EXPECT_EQ(p.retry_backoff_ns(), total);
}

TEST(RetryPolicy, GivesUpAfterLimit) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 4;
  FakeTime ft;
  RetryPolicy p(cfg, ft.clock(), ft.sleeper());
  int calls = 0;
  int fail_observed = 0;
  Status s = p.Run(
      1, [&] { calls++; return Status::Unavailable("always"); },
      [&](const Status&) { fail_observed++; });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 5);          // 1 initial + 4 retries
  EXPECT_EQ(fail_observed, 5);  // every failed attempt reported once
  EXPECT_EQ(p.retries(), 4u);
}

TEST(RetryPolicy, PermanentErrorNeverRetries) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 8;
  FakeTime ft;
  RetryPolicy p(cfg, ft.clock(), ft.sleeper());
  int calls = 0;
  Status s = p.Run(1, [&] { calls++; return Status::IOError("dead"); });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(p.retries(), 0u);
  EXPECT_TRUE(ft.sleeps.empty());
}

TEST(RetryPolicy, ZeroLimitIsDisabled) {
  RetryPolicy p(RetryPolicy::Config{});  // retry_limit = 0 default
  int calls = 0;
  Status s = p.Run(1, [&] { calls++; return Status::Unavailable("x"); });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicy, ConfigFromOptions) {
  Options opt;
  opt.io_retry_limit = 3;
  opt.io_retry_base_us = 50;
  opt.io_retry_max_us = 800;
  RetryPolicy::Config c = RetryPolicy::ConfigFromOptions(opt);
  EXPECT_EQ(c.retry_limit, 3u);
  EXPECT_EQ(c.base_us, 50u);
  EXPECT_EQ(c.max_us, 800u);
}

// ------------------------------------------- device-level transient faults

// A transient fault schedule absorbed by the batch-loop retry: logical
// IoStats are bit-identical to the fault-free run (the standing
// two-plane invariant extended to "fault or no fault").
TEST(DeviceRetry, TransientReadFaultsAbsorbedStatsIdentical) {
  constexpr size_t kBlocks = 8;
  auto run = [&](bool inject, RetryPolicy* policy, IoStats* out) {
    MemoryBlockDevice inner(256);
    FaultyBlockDevice dev(&inner);
    if (policy != nullptr) dev.set_retry_policy(policy);
    std::vector<uint64_t> ids(kBlocks);
    std::vector<std::vector<char>> bufs(kBlocks,
                                        std::vector<char>(256, 0));
    std::vector<const void*> wptrs(kBlocks);
    std::vector<void*> rptrs(kBlocks);
    for (size_t i = 0; i < kBlocks; ++i) {
      ids[i] = dev.Allocate();
      bufs[i][0] = static_cast<char>('a' + i);
      wptrs[i] = bufs[i].data();
      rptrs[i] = bufs[i].data();
    }
    EXPECT_TRUE(dev.WriteBatch(ids.data(), wptrs.data(), kBlocks).ok());
    if (inject) {
      // Fail the 3rd read attempt twice, then succeed (attempts 3 and 4
      // fail, attempt 5 goes through as the 3rd transfer).
      dev.SetTransientReadFault(/*at_read=*/3, /*times=*/2);
    }
    for (auto& b : bufs) std::fill(b.begin(), b.end(), 0);
    Status s = dev.ReadBatch(ids.data(), rptrs.data(), kBlocks);
    EXPECT_TRUE(s.ok()) << s.ToString();
    for (size_t i = 0; i < kBlocks; ++i) {
      EXPECT_EQ(bufs[i][0], static_cast<char>('a' + i));
    }
    *out = dev.stats();
  };

  RetryPolicy::Config cfg;
  cfg.retry_limit = 3;
  FakeTime ft;
  RetryPolicy policy(cfg, ft.clock(), ft.sleeper());

  IoStats clean, faulted;
  run(/*inject=*/false, nullptr, &clean);
  run(/*inject=*/true, &policy, &faulted);
  EXPECT_EQ(policy.retries(), 2u);  // the faults really fired
  EXPECT_EQ(clean.block_reads, faulted.block_reads);
  EXPECT_EQ(clean.block_writes, faulted.block_writes);
  EXPECT_EQ(clean.parallel_reads, faulted.parallel_reads);
  EXPECT_EQ(clean.parallel_writes, faulted.parallel_writes);
  EXPECT_EQ(clean.bytes_read, faulted.bytes_read);
  EXPECT_EQ(clean.bytes_written, faulted.bytes_written);
}

TEST(DeviceRetry, TransientWriteFaultsAbsorbedOnUncountedPlane) {
  MemoryBlockDevice inner(128);
  FaultyBlockDevice dev(&inner);
  RetryPolicy::Config cfg;
  cfg.retry_limit = 4;
  FakeTime ft;
  RetryPolicy policy(cfg, ft.clock(), ft.sleeper());
  dev.set_retry_policy(&policy);

  std::vector<uint64_t> ids(4);
  std::vector<std::vector<char>> bufs(4, std::vector<char>(128, 0));
  std::vector<const void*> wptrs(4);
  for (size_t i = 0; i < 4; ++i) {
    ids[i] = dev.Allocate();
    bufs[i][5] = static_cast<char>(i + 1);
    wptrs[i] = bufs[i].data();
  }
  dev.SetTransientWriteFault(/*at_write=*/2, /*times=*/3);
  Status s = dev.WriteBatchUncounted(ids.data(), wptrs.data(), 4);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(policy.retries(), 3u);
  // Uncounted transfers charge nothing, fault or no fault.
  EXPECT_EQ(dev.stats().block_writes, 0u);
  for (size_t i = 0; i < 4; ++i) {
    std::vector<char> back(128, 0);
    ASSERT_TRUE(dev.ReadUncounted(ids[i], back.data()).ok());
    EXPECT_EQ(back[5], static_cast<char>(i + 1));
  }
}

TEST(DeviceRetry, WithoutPolicyTransientFaultPropagates) {
  MemoryBlockDevice inner(128);
  FaultyBlockDevice dev(&inner);
  uint64_t id = dev.Allocate();
  std::vector<char> buf(128, 0);
  ASSERT_TRUE(dev.Write(id, buf.data()).ok());
  dev.SetTransientReadFault(/*at_read=*/1, /*times=*/1);
  Status s = dev.Read(id, buf.data());
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_TRUE(s.IsTransient());
}

TEST(DeviceRetry, RetriesExhaustedSurfacesTransientStatus) {
  MemoryBlockDevice inner(128);
  FaultyBlockDevice dev(&inner);
  RetryPolicy::Config cfg;
  cfg.retry_limit = 2;
  FakeTime ft;
  RetryPolicy policy(cfg, ft.clock(), ft.sleeper());
  dev.set_retry_policy(&policy);
  uint64_t id = dev.Allocate();
  std::vector<char> buf(128, 0);
  ASSERT_TRUE(dev.WriteUncounted(id, buf.data()).ok());
  dev.SetTransientReadFault(/*at_read=*/1, /*times=*/100);  // outlasts limit
  uint64_t ids[1] = {id};
  void* bufs[1] = {buf.data()};
  Status s = dev.ReadBatchUncounted(ids, bufs, 1);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ(policy.retries(), 2u);
}

// ------------------------------------------------- health and quarantine

TEST(DiskHealth, QuarantineEntersOnFailuresExitsOnRecovery) {
  IoEngine eng(1);
  const uint64_t tag = 42;
  eng.LabelDisk(tag, /*route=*/7);
  EXPECT_FALSE(eng.DiskQuarantined(tag));
  EXPECT_FALSE(eng.AnyQuarantined());

  // Three consecutive failures from the implicit clean prior cross the
  // enter threshold (0.25 + 0.1875 + 0.1406... > 0.5).
  eng.ReportDiskResult(tag, false);
  eng.ReportDiskResult(tag, false);
  EXPECT_FALSE(eng.DiskQuarantined(tag));
  eng.ReportDiskResult(tag, false);
  EXPECT_TRUE(eng.DiskQuarantined(tag));
  EXPECT_TRUE(eng.AnyQuarantined());
  EXPECT_EQ(eng.quarantined_disks(), 1u);
  EXPECT_TRUE(eng.RouteQuarantined(7));
  EXPECT_FALSE(eng.RouteQuarantined(8));
  EXPECT_GT(eng.DiskHealth(tag).error_ewma, 0.5);
  EXPECT_TRUE(eng.DiskHealth(tag).quarantined);
  // Quarantined head: zero submission headroom for grant shaping.
  EXPECT_EQ(eng.DiskHeadroom(tag), 0.0);

  // Recovery evidence (retried operations succeeding) decays the EWMA
  // below the exit threshold and lifts the quarantine.
  int successes = 0;
  while (eng.DiskQuarantined(tag) && successes < 50) {
    eng.ReportDiskResult(tag, true, /*service_ns=*/1000);
    successes++;
  }
  EXPECT_FALSE(eng.DiskQuarantined(tag));
  EXPECT_GE(successes, 3);  // hysteresis: exit is slower than entry
  EXPECT_EQ(eng.quarantined_disks(), 0u);
  EXPECT_FALSE(eng.AnyQuarantined());
  EXPECT_FALSE(eng.RouteQuarantined(7));
}

TEST(DiskHealth, LatencyEwmaTracksServiceTimes) {
  IoEngine eng(1);
  const uint64_t tag = 9;
  eng.ReportDiskResult(tag, true, 1000);
  EXPECT_EQ(eng.DiskHealth(tag).latency_ewma_ns, 1000.0);
  for (int i = 0; i < 20; ++i) eng.ReportDiskResult(tag, true, 9000);
  EXPECT_GT(eng.DiskHealth(tag).latency_ewma_ns, 5000.0);
  EXPECT_EQ(eng.DiskHealth(tag).samples, 21u);
}

// Disarmed prefetch and frozen staging growth while a disk is sick: the
// control planes consult the gauge's quarantine view.
struct QuarantinedGauge : DepthGauge {
  double RouteHeadroom(uint64_t) const override { return 1.0; }
  bool RouteQuarantined(uint64_t route) const override {
    return route == sick_route;
  }
  bool AnyQuarantined() const override { return any; }
  uint64_t sick_route = 0;
  bool any = false;
};

TEST(DiskHealth, GovernorRefusesArmsOnQuarantinedRoute) {
  PrefetchGovernor::Config cfg;
  cfg.budget_blocks = 64;
  PrefetchGovernor gov(cfg);
  QuarantinedGauge gauge;
  gauge.sick_route = 3;
  gov.AttachGauge(&gauge);
  auto sick = gov.Arm(8, /*route=*/3);
  EXPECT_EQ(sick->depth(), 0u);
  EXPECT_EQ(gov.quarantine_disarms(), 1u);
  auto healthy = gov.Arm(8, /*route=*/2);
  EXPECT_GT(healthy->depth(), 0u);
  EXPECT_EQ(gov.quarantine_disarms(), 1u);
}

TEST(DiskHealth, GovernorDisarmsLeaseWhenRouteGoesSick) {
  PrefetchGovernor::Config cfg;
  cfg.budget_blocks = 64;
  cfg.adapt_windows = 2;
  PrefetchGovernor gov(cfg);
  QuarantinedGauge gauge;
  gov.AttachGauge(&gauge);
  auto lease = gov.Arm(8, /*route=*/5);
  ASSERT_GT(lease->depth(), 0u);
  size_t staged_before = gov.staged_blocks();
  EXPECT_GT(staged_before, 0u);
  gauge.sick_route = 5;  // disk quarantined mid-lease
  lease->ReportWindow(4, 0);
  lease->ReportWindow(4, 0);  // period boundary -> Adapt -> disarm
  EXPECT_EQ(lease->depth(), 0u);
  EXPECT_EQ(gov.quarantine_disarms(), 1u);
  EXPECT_LT(gov.staged_blocks(), staged_before);
}

TEST(DiskHealth, ArbiterDeniesStagingGrowsUnderQuarantine) {
  MemoryArbiter::Config cfg;
  cfg.budget_bytes = 1u << 20;
  cfg.block_size = 4096;
  MemoryArbiter arb(cfg);
  QuarantinedGauge gauge;
  arb.AttachGauge(&gauge);
  auto lease = arb.LeaseStaging(8);
  EXPECT_GT(lease->RequestGrow(4), 0u);
  gauge.any = true;
  EXPECT_EQ(lease->RequestGrow(4), 0u);
  EXPECT_EQ(arb.quarantine_denied_grows(), 1u);
  gauge.any = false;
  EXPECT_GT(lease->RequestGrow(4), 0u);
}

// -------------------------------------------------------------- watchdog

TEST(Watchdog, StalledJobTimesOutInsteadOfHangingWait) {
  MemoryBlockDevice inner(64);
  FaultyBlockDevice dev(&inner);
  uint64_t id = dev.Allocate();
  std::vector<char> buf(64, 0);
  ASSERT_TRUE(dev.Write(id, buf.data()).ok());
  dev.SetStallRead(/*at_read=*/1);  // the engine job's read stalls

  Options opts;
  opts.io_threads = 1;
  opts.io_deadline_ms = 50;
  IoEngine eng(opts);
  ASSERT_EQ(eng.deadline_ms(), 50u);

  IoEngine::Ticket t = eng.Submit([&] { return dev.Read(id, buf.data()); });
  // Wait() self-steals queued jobs, so make sure the stalled job is
  // provably blocked on a worker before waiting on its ticket.
  for (int i = 0; i < 2000 && dev.stalled_now() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(dev.stalled_now(), 1);
  Status s = eng.Wait(t);
  EXPECT_TRUE(s.IsTimeout()) << s.ToString();
  EXPECT_NE(s.ToString().find("deadline"), std::string::npos);
  EXPECT_EQ(eng.timeouts(), 1u);
  // Teardown obligation: unblock the worker before the engine joins.
  dev.ReleaseStalls();
}

TEST(Watchdog, ZeroDeadlineWaitsForever) {
  IoEngine eng(1);
  EXPECT_EQ(eng.deadline_ms(), 0u);
  IoEngine::Ticket t = eng.Submit([] { return Status::OK(); });
  EXPECT_TRUE(eng.Wait(t).ok());
  EXPECT_EQ(eng.timeouts(), 0u);
}

// --------------------------------------------------- engine-level retries

TEST(EngineRetry, RetryableJobsReRunOnTransientFailure) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 3;
  FakeTime ft;
  RetryPolicy policy(cfg, ft.clock(), ft.sleeper());
  IoEngine eng(2);
  eng.set_retry_policy(&policy);
  std::atomic<int> calls{0};
  IoEngine::Ticket t = eng.Submit(
      [&] {
        int c = calls.fetch_add(1) + 1;
        return c < 3 ? Status::Unavailable("cold") : Status::OK();
      },
      /*disk=*/5, /*retryable=*/true);
  EXPECT_TRUE(eng.Wait(t).ok());
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(policy.retries(), 2u);
  // Failed attempts fed the disk's health and the final success reported
  // recovery (a worker-executed job folds one more sample; a Wait-stolen
  // one does not, so only the floor is deterministic).
  EXPECT_GE(eng.DiskHealth(5).samples, 3u);
}

TEST(EngineRetry, NonRetryableJobsFailStraightThrough) {
  RetryPolicy::Config cfg;
  cfg.retry_limit = 3;
  FakeTime ft;
  RetryPolicy policy(cfg, ft.clock(), ft.sleeper());
  IoEngine eng(1);
  eng.set_retry_policy(&policy);
  std::atomic<int> calls{0};
  IoEngine::Ticket t = eng.Submit([&] {
    calls.fetch_add(1);
    return Status::Unavailable("x");
  });  // default: not retryable
  EXPECT_TRUE(eng.Wait(t).IsUnavailable());
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(policy.retries(), 0u);
}

// ------------------------------------------------------- ring degradation

TEST(RingDegradation, PersistentFailuresDisableTheRing) {
  IoEngine eng(1, 1, IoBackend::kIoUring);
  if (eng.backend() != IoBackend::kIoUring) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/build";
  }
  ASSERT_NE(eng.ring(), nullptr);
  // A success between failures resets the consecutive-failure counter.
  eng.ReportRingResult(false);
  eng.ReportRingResult(false);
  eng.ReportRingResult(true);
  EXPECT_EQ(eng.backend(), IoBackend::kIoUring);
  eng.ReportRingResult(false);
  eng.ReportRingResult(false);
  EXPECT_EQ(eng.backend(), IoBackend::kIoUring);
  eng.ReportRingResult(false);  // third consecutive: degrade for good
  EXPECT_EQ(eng.backend(), IoBackend::kWorkerPool);
  EXPECT_EQ(eng.ring(), nullptr);
}

}  // namespace
}  // namespace vem
