// Tests for FileBlockDevice's O_DIRECT cold-cache mode: alignment
// handling (aligned and unaligned user memory, single blocks and
// vectored runs), the EOF zero-fill contract, graceful fallback to
// buffered I/O when O_DIRECT cannot engage, and — the core invariant —
// that direct mode never changes IoStats relative to buffered mode.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/ext_vector.h"
#include "io/file_block_device.h"
#include "io/io_engine.h"
#include "sort/external_sort.h"
#include "util/random.h"

namespace vem {
namespace {

std::string ScratchPath(const char* name) {
  return std::string("/tmp/vem_direct_io_") + name + ".bin";
}

constexpr size_t kDirectBlock = 4096;  // multiple of the 512 B fs bar

// ------------------------------------------------------------ activation

TEST(DirectIo, UnalignedBlockSizeFallsBackToBuffered) {
  // 96 is not a multiple of 512: O_DIRECT cannot satisfy its offset /
  // length contract, so the device must silently run buffered.
  FileBlockDevice dev(ScratchPath("fallback_bs"), 96, true,
                      /*direct_io=*/true);
  ASSERT_TRUE(dev.valid());
  EXPECT_FALSE(dev.direct_io_active());
  // ...and still work end to end.
  std::vector<char> w(96, 'y'), r(96);
  uint64_t id = dev.Allocate();
  ASSERT_TRUE(dev.Write(id, w.data()).ok());
  ASSERT_TRUE(dev.Read(id, r.data()).ok());
  EXPECT_EQ(0, std::memcmp(w.data(), r.data(), 96));
}

TEST(DirectIo, BufferedModeNeverActivatesDirect) {
  FileBlockDevice dev(ScratchPath("buffered"), kDirectBlock, true,
                      /*direct_io=*/false);
  ASSERT_TRUE(dev.valid());
  EXPECT_FALSE(dev.direct_io_active());
}

// Whether direct mode engages on /tmp depends on the filesystem (tmpfs
// historically rejects O_DIRECT at open; ext4 and friends accept). The
// contract is: valid() regardless, and every behavior below must hold in
// whichever mode the device landed in.
TEST(DirectIo, RequestIsAlwaysSafe) {
  FileBlockDevice dev(ScratchPath("request"), kDirectBlock, true,
                      /*direct_io=*/true);
  ASSERT_TRUE(dev.valid());
  std::vector<char> w(kDirectBlock, 'd'), r(kDirectBlock);
  uint64_t id = dev.Allocate();
  ASSERT_TRUE(dev.Write(id, w.data()).ok());
  ASSERT_TRUE(dev.Read(id, r.data()).ok());
  EXPECT_EQ(w, r);
}

// ------------------------------------------------------------- alignment

TEST(DirectIo, UnalignedUserBuffersRoundTrip) {
  FileBlockDevice dev(ScratchPath("unaligned"), kDirectBlock, true, true);
  ASSERT_TRUE(dev.valid());
  // Deliberately misaligned user memory: offset the payload by 1 byte
  // inside an oversized allocation. The device must bounce-buffer.
  std::vector<char> wraw(kDirectBlock + 64), rraw(kDirectBlock + 64);
  char* wbuf = wraw.data() + 1;
  char* rbuf = rraw.data() + 1;
  Rng rng(7);
  for (size_t i = 0; i < kDirectBlock; ++i) {
    wbuf[i] = static_cast<char>(rng.Next());
  }
  uint64_t id = dev.Allocate();
  ASSERT_TRUE(dev.Write(id, wbuf).ok());
  ASSERT_TRUE(dev.Read(id, rbuf).ok());
  EXPECT_EQ(0, std::memcmp(wbuf, rbuf, kDirectBlock));
}

TEST(DirectIo, AlignedUserBuffersRoundTrip) {
  FileBlockDevice dev(ScratchPath("aligned"), kDirectBlock, true, true);
  ASSERT_TRUE(dev.valid());
  void* wmem = nullptr;
  void* rmem = nullptr;
  ASSERT_EQ(0, posix_memalign(&wmem, 4096, kDirectBlock));
  ASSERT_EQ(0, posix_memalign(&rmem, 4096, kDirectBlock));
  std::memset(wmem, 0x5A, kDirectBlock);
  uint64_t id = dev.Allocate();
  EXPECT_TRUE(dev.Write(id, wmem).ok());
  EXPECT_TRUE(dev.Read(id, rmem).ok());
  EXPECT_EQ(0, std::memcmp(wmem, rmem, kDirectBlock));
  std::free(wmem);
  std::free(rmem);
}

TEST(DirectIo, VectoredScatteredBatchRoundTrip) {
  // Non-contiguous per-block buffers force the bounce path for every
  // coalesced run; contents must still round-trip exactly.
  FileBlockDevice dev(ScratchPath("vectored"), kDirectBlock, true, true);
  ASSERT_TRUE(dev.valid());
  const size_t kBlocks = 19;
  std::vector<uint64_t> ids(kBlocks);
  std::vector<std::vector<char>> payload(kBlocks);
  std::vector<const void*> wbufs(kBlocks);
  for (size_t i = 0; i < kBlocks; ++i) {
    ids[i] = dev.Allocate();
    payload[i].assign(kDirectBlock, static_cast<char>('A' + i));
    wbufs[i] = payload[i].data();
  }
  ASSERT_TRUE(dev.WriteBatch(ids.data(), wbufs.data(), kBlocks).ok());
  std::vector<std::vector<char>> got(kBlocks,
                                     std::vector<char>(kDirectBlock));
  std::vector<void*> rbufs(kBlocks);
  for (size_t i = 0; i < kBlocks; ++i) rbufs[i] = got[i].data();
  ASSERT_TRUE(dev.ReadBatch(ids.data(), rbufs.data(), kBlocks).ok());
  for (size_t i = 0; i < kBlocks; ++i) EXPECT_EQ(got[i], payload[i]) << i;
}

// ---------------------------------------------------------- EOF zero-fill

TEST(DirectIo, AllocatedButUnwrittenReadsZero) {
  FileBlockDevice dev(ScratchPath("eof"), kDirectBlock, true, true);
  ASSERT_TRUE(dev.valid());
  uint64_t written = dev.Allocate();
  uint64_t hole = dev.Allocate();     // never written, inside EOF once
  uint64_t past_eof = dev.Allocate();  // stays past EOF
  std::vector<char> payload(kDirectBlock, 'x'), buf(kDirectBlock, 'q');
  ASSERT_TRUE(dev.Write(written, payload.data()).ok());
  ASSERT_TRUE(dev.Read(past_eof, buf.data()).ok());
  for (char c : buf) ASSERT_EQ(c, 0);
  // Write past the hole so `hole` becomes a real file hole, then read it.
  uint64_t far = dev.Allocate();
  ASSERT_TRUE(dev.Write(far, payload.data()).ok());
  buf.assign(kDirectBlock, 'q');
  ASSERT_TRUE(dev.Read(hole, buf.data()).ok());
  for (char c : buf) ASSERT_EQ(c, 0);
  // A batch spanning written and unwritten blocks zero-fills the tail.
  uint64_t span_ids[2] = {written, hole};
  std::vector<char> b0(kDirectBlock), b1(kDirectBlock, 'q');
  void* bufs[2] = {b0.data(), b1.data()};
  ASSERT_TRUE(dev.ReadBatch(span_ids, bufs, 2).ok());
  EXPECT_EQ(0, std::memcmp(b0.data(), payload.data(), kDirectBlock));
  for (char c : b1) ASSERT_EQ(c, 0);
}

// ------------------------------------------------- stats identity contract

TEST(DirectIo, StatsBitIdenticalToBufferedMode) {
  // The same scattered workload on a buffered and a direct device must
  // produce identical contents AND identical IoStats: direct I/O is a
  // wall-clock/cold-cache knob, not a cost-model change.
  auto run = [](bool direct, IoStats* cost) {
    FileBlockDevice dev(ScratchPath(direct ? "stats_d" : "stats_b"),
                        kDirectBlock, true, direct);
    ASSERT_TRUE(dev.valid());
    const size_t kBlocks = 23;
    std::vector<uint64_t> ids(kBlocks);
    for (auto& id : ids) id = dev.Allocate();
    std::vector<char> block(kDirectBlock);
    IoProbe probe(dev);
    for (size_t i = 0; i < kBlocks; ++i) {
      block.assign(kDirectBlock, static_cast<char>(i));
      ASSERT_TRUE(dev.Write(ids[i], block.data()).ok());
    }
    // Batched read of a forward run, then scattered single reads.
    std::vector<std::vector<char>> got(kBlocks,
                                       std::vector<char>(kDirectBlock));
    std::vector<void*> bufs(kBlocks);
    for (size_t i = 0; i < kBlocks; ++i) bufs[i] = got[i].data();
    ASSERT_TRUE(dev.ReadBatch(ids.data(), bufs.data(), kBlocks).ok());
    for (size_t i = 0; i < kBlocks; i += 3) {
      ASSERT_TRUE(dev.Read(ids[i], got[i].data()).ok());
    }
    *cost = probe.delta();
  };
  IoStats buffered, direct;
  run(false, &buffered);
  run(true, &direct);
  EXPECT_TRUE(buffered == direct)
      << "buffered " << buffered.ToString() << " vs direct "
      << direct.ToString();
}

TEST(DirectIo, SortOnDirectDeviceMatchesBuffered) {
  // End-to-end: an external sort with prefetch + engine on a direct
  // device returns the same answer at the same PDM cost as the buffered
  // synchronous run.
  const size_t kMem = 64 * 1024, kItems = 30000;
  Rng rng(2026);
  std::vector<uint64_t> data(kItems);
  for (auto& x : data) x = rng.Next() % 1000000;
  std::vector<uint64_t> want = data;
  std::sort(want.begin(), want.end());

  auto run = [&](bool direct, size_t depth, IoEngine* engine,
                 IoStats* cost, std::vector<uint64_t>* out_items) {
    FileBlockDevice dev(ScratchPath(direct ? "sort_d" : "sort_b"),
                        kDirectBlock, true, direct);
    ASSERT_TRUE(dev.valid());
    if (engine != nullptr) dev.set_io_engine(engine);
    ExtVector<uint64_t> input(&dev);
    ASSERT_TRUE(input.AppendAll(data.data(), data.size()).ok());
    ExternalSorter<uint64_t> sorter(&dev, kMem);
    sorter.set_prefetch_depth(depth);
    ExtVector<uint64_t> out(&dev);
    IoProbe probe(dev);
    ASSERT_TRUE(sorter.Sort(input, &out).ok());
    *cost = probe.delta();
    ASSERT_TRUE(out.ReadAll(out_items).ok());
    dev.set_io_engine(nullptr);
  };
  IoStats buffered_cost, direct_cost;
  std::vector<uint64_t> buffered_out, direct_out;
  IoEngine engine(2);
  run(false, 0, nullptr, &buffered_cost, &buffered_out);
  run(true, 8, &engine, &direct_cost, &direct_out);
  EXPECT_EQ(buffered_out, want);
  EXPECT_EQ(direct_out, want);
  EXPECT_TRUE(buffered_cost == direct_cost)
      << "buffered " << buffered_cost.ToString() << " vs direct "
      << direct_cost.ToString();
}

// ------------------------------------------------------ durability (Sync)

TEST(FileDeviceSync, SyncFlushesWithoutTouchingStats) {
  FileBlockDevice dev(ScratchPath("sync"), kDirectBlock);
  ASSERT_TRUE(dev.valid());
  std::vector<char> block(kDirectBlock, 'x');
  uint64_t id = dev.Allocate();
  ASSERT_TRUE(dev.Write(id, block.data()).ok());
  IoStats before = dev.stats();
  // The durability barrier is not a PDM transfer: counters are frozen.
  EXPECT_TRUE(dev.Sync().ok());
  EXPECT_TRUE(before == dev.stats());
  // Data written before the barrier reads back intact after it.
  std::vector<char> got(kDirectBlock, 0);
  ASSERT_TRUE(dev.Read(id, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), block.data(), kDirectBlock), 0);
}

TEST(FileDeviceSync, SyncOnCloseViaOptions) {
  Options opts;
  opts.block_size = kDirectBlock;
  opts.sync_on_close = true;
  std::string path = ScratchPath("sync_close");
  std::vector<char> block(kDirectBlock, 'y');
  {
    FileBlockDevice dev(path, opts, /*unlink_on_close=*/false);
    ASSERT_TRUE(dev.valid());
    uint64_t id = dev.Allocate();
    ASSERT_TRUE(dev.Write(id, block.data()).ok());
    // Destructor issues the fdatasync barrier before close.
  }
  {
    FileBlockDevice dev2(path, kDirectBlock);  // truncates: just cleanup
    ASSERT_TRUE(dev2.valid());
  }
}

}  // namespace
}  // namespace vem
