// Tests for the extension modules: sorted-set operations, external SpMV,
// suffix-array search, Euler-tour depths.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "core/set_ops.h"
#include "graph/euler_tour.h"
#include "io/memory_block_device.h"
#include "sort/spmv.h"
#include "string/sa_search.h"
#include "string/suffix_array.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr size_t kMem = 4096;

// -------------------------------------------------------------- set ops

class SetOpsFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetOpsFuzz, AllOpsMatchStdAlgorithms) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(GetParam());
  std::set<uint32_t> sa, sb;
  size_t na = rng.Uniform(3000), nb = rng.Uniform(3000);
  for (size_t i = 0; i < na; ++i) sa.insert(static_cast<uint32_t>(rng.Uniform(4000)));
  for (size_t i = 0; i < nb; ++i) sb.insert(static_cast<uint32_t>(rng.Uniform(4000)));
  std::vector<uint32_t> va(sa.begin(), sa.end()), vb(sb.begin(), sb.end());

  ExtVector<uint32_t> a(&dev), b(&dev);
  ASSERT_TRUE(a.AppendAll(va.data(), va.size()).ok());
  ASSERT_TRUE(b.AppendAll(vb.data(), vb.size()).ok());

  auto check = [&](auto op, auto std_op) {
    ExtVector<uint32_t> out(&dev);
    ASSERT_TRUE(op(a, b, &out).ok());
    std::vector<uint32_t> got, expect;
    ASSERT_TRUE(out.ReadAll(&got).ok());
    std_op(va, vb, &expect);
    ASSERT_EQ(got, expect);
  };
  check(
      [](auto& x, auto& y, auto* o) { return SortedUnion(x, y, o); },
      [](auto& x, auto& y, auto* e) {
        std::set_union(x.begin(), x.end(), y.begin(), y.end(),
                       std::back_inserter(*e));
      });
  check(
      [](auto& x, auto& y, auto* o) { return SortedIntersection(x, y, o); },
      [](auto& x, auto& y, auto* e) {
        std::set_intersection(x.begin(), x.end(), y.begin(), y.end(),
                              std::back_inserter(*e));
      });
  check(
      [](auto& x, auto& y, auto* o) { return SortedDifference(x, y, o); },
      [](auto& x, auto& y, auto* e) {
        std::set_difference(x.begin(), x.end(), y.begin(), y.end(),
                            std::back_inserter(*e));
      });
  check(
      [](auto& x, auto& y, auto* o) { return SortedMerge(x, y, o); },
      [](auto& x, auto& y, auto* e) {
        std::merge(x.begin(), x.end(), y.begin(), y.end(),
                   std::back_inserter(*e));
      });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpsFuzz, ::testing::Values(1, 2, 3, 4, 5));

TEST(SetOps, EmptyAndDisjointEdgeCases) {
  MemoryBlockDevice dev(kBlock);
  ExtVector<uint32_t> empty(&dev), a(&dev), out1(&dev), out2(&dev), out3(&dev);
  std::vector<uint32_t> va{1, 5, 9};
  ASSERT_TRUE(a.AppendAll(va.data(), va.size()).ok());
  ASSERT_TRUE(SortedUnion(a, empty, &out1).ok());
  std::vector<uint32_t> got;
  ASSERT_TRUE(out1.ReadAll(&got).ok());
  EXPECT_EQ(got, va);
  ASSERT_TRUE(SortedIntersection(a, empty, &out2).ok());
  EXPECT_EQ(out2.size(), 0u);
  ASSERT_TRUE(SortedDifference(empty, a, &out3).ok());
  EXPECT_EQ(out3.size(), 0u);
}

TEST(SetOps, UniqueCollapsesRuns) {
  MemoryBlockDevice dev(kBlock);
  ExtVector<uint32_t> a(&dev), out(&dev);
  std::vector<uint32_t> va{1, 1, 1, 2, 3, 3, 7, 7, 7, 7};
  ASSERT_TRUE(a.AppendAll(va.data(), va.size()).ok());
  ASSERT_TRUE(SortedUnique(a, &out).ok());
  std::vector<uint32_t> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  EXPECT_EQ(got, (std::vector<uint32_t>{1, 2, 3, 7}));
}

TEST(SetOps, CostIsScanBounded) {
  MemoryBlockDevice dev(kBlock);
  const size_t kB = kBlock / sizeof(uint32_t);
  const size_t kN = 40000;
  ExtVector<uint32_t> a(&dev), b(&dev);
  {
    ExtVector<uint32_t>::Writer wa(&a), wb(&b);
    for (uint32_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(wa.Append(2 * i));
      ASSERT_TRUE(wb.Append(3 * i));
    }
    ASSERT_TRUE(wa.Finish().ok());
    ASSERT_TRUE(wb.Finish().ok());
  }
  ExtVector<uint32_t> out(&dev);
  IoProbe probe(dev);
  ASSERT_TRUE(SortedUnion(a, b, &out).ok());
  EXPECT_LE(probe.delta().block_ios(), 2 * (2 * kN + out.size()) / kB + 8);
}

// ----------------------------------------------------------------- SpMV

TEST(SparseMatVec, MatchesDenseReference) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(7);
  const uint64_t kRows = 300, kCols = 200, kNnz = 4000;
  std::vector<CooEntry> entries;
  std::vector<double> xv(kCols);
  for (auto& v : xv) v = rng.NextDouble() * 2 - 1;
  for (uint64_t i = 0; i < kNnz; ++i) {
    entries.push_back({rng.Uniform(kRows), rng.Uniform(kCols),
                       rng.NextDouble() * 2 - 1});
  }
  std::vector<double> expect(kRows, 0.0);
  for (const auto& e : entries) expect[e.row] += e.value * xv[e.col];

  ExtVector<CooEntry> a(&dev);
  ExtVector<double> x(&dev), y(&dev);
  ASSERT_TRUE(a.AppendAll(entries.data(), entries.size()).ok());
  ASSERT_TRUE(x.AppendAll(xv.data(), xv.size()).ok());
  SparseMatVec spmv(&dev, kMem);
  ASSERT_TRUE(spmv.Multiply(a, x, kRows, &y).ok());
  std::vector<double> got;
  ASSERT_TRUE(y.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), kRows);
  for (uint64_t r = 0; r < kRows; ++r) {
    ASSERT_NEAR(got[r], expect[r], 1e-9) << "row " << r;
  }
}

TEST(SparseMatVec, EmptyRowsAreZero) {
  MemoryBlockDevice dev(kBlock);
  std::vector<CooEntry> entries = {{0, 0, 2.0}, {4, 1, 3.0}};
  std::vector<double> xv = {10, 100};
  ExtVector<CooEntry> a(&dev);
  ExtVector<double> x(&dev), y(&dev);
  ASSERT_TRUE(a.AppendAll(entries.data(), entries.size()).ok());
  ASSERT_TRUE(x.AppendAll(xv.data(), xv.size()).ok());
  SparseMatVec spmv(&dev, kMem);
  ASSERT_TRUE(spmv.Multiply(a, x, 6, &y).ok());
  std::vector<double> got;
  ASSERT_TRUE(y.ReadAll(&got).ok());
  EXPECT_EQ(got, (std::vector<double>{20, 0, 0, 0, 300, 0}));
}

TEST(SparseMatVec, ColumnOutOfRangeRejected) {
  MemoryBlockDevice dev(kBlock);
  std::vector<CooEntry> entries = {{0, 5, 1.0}};
  std::vector<double> xv = {1, 2};
  ExtVector<CooEntry> a(&dev);
  ExtVector<double> x(&dev), y(&dev);
  ASSERT_TRUE(a.AppendAll(entries.data(), entries.size()).ok());
  ASSERT_TRUE(x.AppendAll(xv.data(), xv.size()).ok());
  SparseMatVec spmv(&dev, kMem);
  EXPECT_TRUE(spmv.Multiply(a, x, 1, &y).IsInvalidArgument());
}

TEST(SparseMatVec, SortBasedBeatsNaiveOnIos) {
  MemoryBlockDevice dev(4096);
  BufferPool pool(&dev, 8);
  Rng rng(8);
  const uint64_t kRows = 20000, kCols = 20000, kNnz = 60000;
  std::vector<CooEntry> entries;
  for (uint64_t i = 0; i < kNnz; ++i) {
    entries.push_back({rng.Uniform(kRows), rng.Uniform(kCols),
                       rng.NextDouble()});
  }
  std::vector<double> xv(kCols);
  for (auto& v : xv) v = rng.NextDouble();
  ExtVector<CooEntry> a(&dev);
  ExtVector<double> x(&dev, &pool);
  ASSERT_TRUE(a.AppendAll(entries.data(), entries.size()).ok());
  ASSERT_TRUE(x.AppendAll(xv.data(), xv.size()).ok());

  ExtVector<double> y1(&dev), y2(&dev);
  IoProbe p1(dev);
  SparseMatVec spmv(&dev, 64 * 1024);
  ASSERT_TRUE(spmv.Multiply(a, x, kRows, &y1).ok());
  uint64_t sort_ios = p1.delta().block_ios();

  IoProbe p2(dev);
  ASSERT_TRUE(SparseMatVecNaive(a, x, kRows, &pool, &y2).ok());
  uint64_t naive_ios = p2.delta().block_ios();
  EXPECT_LT(sort_ios * 3, naive_ios)
      << "sort=" << sort_ios << " naive=" << naive_ios;

  std::vector<double> v1, v2;
  ASSERT_TRUE(y1.ReadAll(&v1).ok());
  ASSERT_TRUE(y2.ReadAll(&v2).ok());
  ASSERT_EQ(v1.size(), v2.size());
  for (size_t i = 0; i < v1.size(); ++i) ASSERT_NEAR(v1[i], v2[i], 1e-9);
}

// ------------------------------------------------------ suffix array search

TEST(SuffixArraySearch, FindsAllOccurrences) {
  MemoryBlockDevice dev(kBlock);
  std::string text = "abracadabra_abracadabra_banana";
  ExtVector<uint8_t> tv(&dev);
  ASSERT_TRUE(tv.AppendAll(reinterpret_cast<const uint8_t*>(text.data()),
                           text.size())
                  .ok());
  SuffixArrayBuilder builder(&dev, kMem);
  ExtVector<uint64_t> sa(&dev);
  ASSERT_TRUE(builder.Build(tv, &sa).ok());
  SuffixArraySearcher searcher(&tv, &sa);

  auto expect_count = [&](const std::string& p) {
    uint64_t c = 0;
    for (size_t i = 0; i + p.size() <= text.size(); ++i) {
      if (text.compare(i, p.size(), p) == 0) c++;
    }
    return c;
  };
  const std::vector<std::string> patterns = {
      "abra", "a", "banana", "cad", "zzz", "abracadabra", "_"};
  for (const std::string& p : patterns) {
    uint64_t count;
    ASSERT_TRUE(searcher.Count(p, &count).ok());
    EXPECT_EQ(count, expect_count(p)) << "pattern " << p;
    std::vector<uint64_t> hits;
    ASSERT_TRUE(searcher.Find(p, &hits).ok());
    EXPECT_EQ(hits.size(), count);
    for (uint64_t pos : hits) {
      EXPECT_EQ(text.compare(pos, p.size(), p), 0) << "pos " << pos;
    }
  }
}

TEST(SuffixArraySearch, RandomTextProperty) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(44);
  std::string text;
  for (int i = 0; i < 3000; ++i) {
    text.push_back('a' + static_cast<char>(rng.Uniform(3)));
  }
  ExtVector<uint8_t> tv(&dev);
  ASSERT_TRUE(tv.AppendAll(reinterpret_cast<const uint8_t*>(text.data()),
                           text.size())
                  .ok());
  SuffixArrayBuilder builder(&dev, kMem);
  ExtVector<uint64_t> sa(&dev);
  ASSERT_TRUE(builder.Build(tv, &sa).ok());
  SuffixArraySearcher searcher(&tv, &sa);
  for (int t = 0; t < 30; ++t) {
    size_t len = 1 + rng.Uniform(6);
    std::string p;
    for (size_t i = 0; i < len; ++i) {
      p.push_back('a' + static_cast<char>(rng.Uniform(3)));
    }
    uint64_t expect = 0;
    for (size_t i = 0; i + p.size() <= text.size(); ++i) {
      if (text.compare(i, p.size(), p) == 0) expect++;
    }
    uint64_t count;
    ASSERT_TRUE(searcher.Count(p, &count).ok());
    ASSERT_EQ(count, expect) << "pattern " << p;
  }
}

// ------------------------------------------------------- Euler tour depths

TEST(EulerTourDepths, MatchesBfsDepths) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(17);
  const uint64_t n = 3000;
  std::vector<Edge> e;
  std::vector<uint64_t> parent(n, 0);
  std::vector<uint64_t> ref(n, 0);
  for (uint64_t v = 1; v < n; ++v) {
    parent[v] = rng.Uniform(v);
    ref[v] = ref[parent[v]] + 1;
    e.push_back({parent[v], v});
  }
  ExtVector<Edge> tree(&dev);
  ASSERT_TRUE(tree.AppendAll(e.data(), e.size()).ok());
  EulerTour et(&dev, kMem);
  ExtVector<TourArc> arcs(&dev);
  ASSERT_TRUE(et.Run(tree, n, 0, &arcs).ok());
  ExtVector<VertexDepth2> depths(&dev);
  ASSERT_TRUE(et.Depths(arcs, 0, &depths).ok());
  std::vector<VertexDepth2> got;
  ASSERT_TRUE(depths.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), n);
  for (uint64_t v = 0; v < n; ++v) {
    ASSERT_EQ(got[v].vertex, v);
    ASSERT_EQ(got[v].depth, ref[v]) << "vertex " << v;
  }
}

TEST(EulerTourDepths, PathAndStar) {
  MemoryBlockDevice dev(kBlock);
  // Path 0-1-2-...-9 rooted at 0: depth(v) = v.
  {
    std::vector<Edge> e;
    for (uint64_t v = 1; v < 10; ++v) e.push_back({v - 1, v});
    ExtVector<Edge> tree(&dev);
    ASSERT_TRUE(tree.AppendAll(e.data(), e.size()).ok());
    EulerTour et(&dev, kMem);
    ExtVector<TourArc> arcs(&dev);
    ASSERT_TRUE(et.Run(tree, 10, 0, &arcs).ok());
    ExtVector<VertexDepth2> depths(&dev);
    ASSERT_TRUE(et.Depths(arcs, 0, &depths).ok());
    std::vector<VertexDepth2> got;
    ASSERT_TRUE(depths.ReadAll(&got).ok());
    for (uint64_t v = 0; v < 10; ++v) ASSERT_EQ(got[v].depth, v);
  }
  // Star rooted at the hub: all leaves depth 1.
  {
    std::vector<Edge> e;
    for (uint64_t v = 1; v < 10; ++v) e.push_back({0, v});
    ExtVector<Edge> tree(&dev);
    ASSERT_TRUE(tree.AppendAll(e.data(), e.size()).ok());
    EulerTour et(&dev, kMem);
    ExtVector<TourArc> arcs(&dev);
    ASSERT_TRUE(et.Run(tree, 10, 0, &arcs).ok());
    ExtVector<VertexDepth2> depths(&dev);
    ASSERT_TRUE(et.Depths(arcs, 0, &depths).ok());
    std::vector<VertexDepth2> got;
    ASSERT_TRUE(depths.ReadAll(&got).ok());
    EXPECT_EQ(got[0].depth, 0u);
    for (uint64_t v = 1; v < 10; ++v) ASSERT_EQ(got[v].depth, 1u);
  }
}

}  // namespace
}  // namespace vem
