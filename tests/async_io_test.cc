// Tests for the batched async I/O engine: vectored batch transfers,
// stream read-ahead/write-behind, parallel striping, and — above all —
// the contract that none of it changes IoStats: the PDM cost model stays
// bit-identical whether overlap is on or off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/ext_vector.h"
#include "io/buffer_pool.h"
#include "io/faulty_device.h"
#include "io/file_block_device.h"
#include "io/io_engine.h"
#include "io/io_ring.h"
#include "io/memory_block_device.h"
#include "io/striped_device.h"
#include "sort/external_sort.h"
#include "util/options.h"
#include "util/random.h"

namespace vem {
namespace {

std::string ScratchPath(const char* name) {
  return std::string("/tmp/vem_async_test_") + name + ".bin";
}

// ------------------------------------------------------------------ engine

TEST(IoEngine, SubmitWaitRoundTrip) {
  IoEngine engine(3);
  std::vector<IoEngine::Ticket> tickets;
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    tickets.push_back(engine.Submit([&results, i] {
      results[i] = i * i;
      return Status::OK();
    }));
  }
  for (auto t : tickets) EXPECT_TRUE(engine.Wait(t).ok());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(IoEngine, WaitReturnsJobStatus) {
  IoEngine engine(1);
  auto t1 = engine.Submit([] { return Status::IOError("boom"); });
  auto t2 = engine.Submit([] { return Status::OK(); });
  EXPECT_TRUE(engine.Wait(t1).IsIOError());
  EXPECT_TRUE(engine.Wait(t2).ok());
}

TEST(IoEngine, RunBatchAggregatesFirstError) {
  IoEngine engine(2);
  std::vector<std::function<Status()>> jobs;
  std::vector<int> ran(8, 0);
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([&ran, i] {
      ran[i] = 1;
      return i == 5 ? Status::Corruption("bad stripe") : Status::OK();
    });
  }
  EXPECT_TRUE(engine.RunBatch(std::move(jobs)).IsCorruption());
  // Every job ran to completion even though one failed.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ran[i], 1) << i;
}

TEST(IoEngine, DestructorDrainsQueue) {
  std::vector<int> ran(32, 0);
  {
    IoEngine engine(2);
    for (int i = 0; i < 32; ++i) {
      engine.Submit([&ran, i] {
        ran[i] = 1;
        return Status::OK();
      });
    }
    // No Wait: unredeemed jobs must still execute before teardown.
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ran[i], 1) << i;
}

// ------------------------------------------------- FileBlockDevice basics

TEST(FileBlockDevice, AllocateThenReadIsZeroFilled) {
  FileBlockDevice dev(ScratchPath("eofread"), 128);
  ASSERT_TRUE(dev.valid());
  uint64_t written = dev.Allocate();
  uint64_t untouched = dev.Allocate();
  std::vector<char> payload(128, 'x'), buf(128, 'q');
  ASSERT_TRUE(dev.Write(written, payload.data()).ok());
  // `untouched` lives past EOF: short pread must zero-fill, not fail.
  ASSERT_TRUE(dev.Read(untouched, buf.data()).ok());
  for (char c : buf) EXPECT_EQ(c, 0);
  // Partially-hole blocks too: allocate far ahead, write beyond, read back.
  ASSERT_TRUE(dev.Read(written, buf.data()).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), payload.data(), 128));
}

// ------------------------------------------------------- batch equivalence

// Runs the same scattered workload through batch and looped transfers on
// two identical devices and demands identical contents and stats.
template <typename MakeDev>
void CheckBatchMatchesLoop(MakeDev make_dev) {
  auto batch_dev = make_dev("batch");
  auto loop_dev = make_dev("loop");
  const size_t kBlocks = 37;  // not a multiple of anything interesting
  const size_t bs = batch_dev->block_size();
  std::vector<uint64_t> ids_a, ids_b;
  for (size_t i = 0; i < kBlocks; ++i) {
    ids_a.push_back(batch_dev->Allocate());
    ids_b.push_back(loop_dev->Allocate());
  }
  ASSERT_EQ(ids_a, ids_b);
  // Mix contiguous runs with jumps: forward run, backward stripe, gaps.
  std::vector<uint64_t> order;
  for (size_t i = 0; i < 12; ++i) order.push_back(ids_a[i]);
  for (size_t i = kBlocks; i > 20; --i) order.push_back(ids_a[i - 1]);
  for (size_t i = 12; i < 20; i += 2) order.push_back(ids_a[i]);

  std::vector<std::vector<char>> payload(order.size());
  std::vector<const void*> wbufs(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    payload[i].assign(bs, static_cast<char>('A' + (i % 26)));
    wbufs[i] = payload[i].data();
  }
  // Batch write vs looped write.
  ASSERT_TRUE(
      batch_dev->WriteBatch(order.data(), wbufs.data(), order.size()).ok());
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_TRUE(loop_dev->Write(order[i], wbufs[i]).ok());
  }
  EXPECT_TRUE(batch_dev->stats() == loop_dev->stats());

  // Batch read vs looped read.
  std::vector<std::vector<char>> got_batch(order.size()),
      got_loop(order.size());
  std::vector<void*> rbufs(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    got_batch[i].resize(bs);
    got_loop[i].resize(bs);
    rbufs[i] = got_batch[i].data();
  }
  ASSERT_TRUE(
      batch_dev->ReadBatch(order.data(), rbufs.data(), order.size()).ok());
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_TRUE(loop_dev->Read(order[i], got_loop[i].data()).ok());
  }
  EXPECT_TRUE(batch_dev->stats() == loop_dev->stats());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(got_batch[i], got_loop[i]) << "block " << i;
    EXPECT_EQ(got_batch[i], payload[i]) << "block " << i;
  }
}

TEST(BatchTransfers, FileDeviceMatchesLoop) {
  CheckBatchMatchesLoop([](const char* tag) {
    return std::make_unique<FileBlockDevice>(ScratchPath(tag), 256);
  });
}

TEST(BatchTransfers, MemoryDeviceMatchesLoop) {
  CheckBatchMatchesLoop([](const char*) {
    return std::make_unique<MemoryBlockDevice>(256);
  });
}

TEST(BatchTransfers, FaultyDeviceInjectsMidBatch) {
  MemoryBlockDevice inner(64);
  std::vector<uint64_t> ids(8);
  std::vector<char> block(64, 'z');
  for (auto& id : ids) {
    id = inner.Allocate();
    ASSERT_TRUE(inner.Write(id, block.data()).ok());
  }
  // Fail the 3rd read: the batch must stop exactly like the loop would,
  // with two successful (counted) reads behind it.
  FaultyBlockDevice dev(&inner, /*fail_read_at=*/3);
  std::vector<std::vector<char>> bufs(8, std::vector<char>(64));
  std::vector<void*> ptrs(8);
  for (size_t i = 0; i < 8; ++i) ptrs[i] = bufs[i].data();
  EXPECT_TRUE(dev.ReadBatch(ids.data(), ptrs.data(), 8).IsIOError());
  EXPECT_EQ(dev.reads_seen(), 3u);
  EXPECT_EQ(dev.stats().block_reads, 2u);

  // Same for writes.
  FaultyBlockDevice wdev(&inner, FaultyBlockDevice::kNever,
                         /*fail_write_at=*/5);
  std::vector<const void*> wptrs(8, block.data());
  EXPECT_TRUE(wdev.WriteBatch(ids.data(), wptrs.data(), 8).IsIOError());
  EXPECT_EQ(wdev.writes_seen(), 5u);
  EXPECT_EQ(wdev.stats().block_writes, 4u);
}

TEST(BatchTransfers, FileBatchRejectsUnallocated) {
  FileBlockDevice dev(ScratchPath("unalloc"), 64);
  uint64_t a = dev.Allocate();
  std::vector<char> block(64, 'p');
  ASSERT_TRUE(dev.Write(a, block.data()).ok());
  uint64_t ids[2] = {a, a + 7};  // second id never allocated
  std::vector<char> b0(64), b1(64);
  void* bufs[2] = {b0.data(), b1.data()};
  EXPECT_TRUE(dev.ReadBatch(ids, bufs, 2).IsInvalidArgument());
}

// ----------------------------------------------------- reader read-ahead

// Scans [start, n) with the given depth/engine config and returns items
// plus the stats delta, asserting the delta matches a synchronous scan.
void CheckPrefetchScanIdentity(BlockDevice* dev, IoEngine* engine,
                               size_t depth) {
  if (engine != nullptr) dev->set_io_engine(engine);
  ExtVector<uint32_t> vec(dev);
  const size_t kItems = 10000;
  {
    typename ExtVector<uint32_t>::Writer w(&vec);
    for (size_t i = 0; i < kItems; ++i) ASSERT_TRUE(w.Append(uint32_t(i * 7)));
    ASSERT_TRUE(w.Finish().ok());
  }
  // Baseline: synchronous scan.
  IoProbe sync_probe(*dev);
  std::vector<uint32_t> sync_items;
  {
    typename ExtVector<uint32_t>::Reader r(&vec, 0, /*depth=*/0);
    uint32_t v;
    while (r.Next(&v)) sync_items.push_back(v);
    ASSERT_TRUE(r.status().ok());
  }
  IoStats sync_cost = sync_probe.delta();

  // Prefetched scan: same items, bit-identical stats.
  IoProbe probe(*dev);
  std::vector<uint32_t> items;
  {
    typename ExtVector<uint32_t>::Reader r(&vec, 0,
                                           static_cast<int>(depth));
    uint32_t v;
    while (r.Next(&v)) items.push_back(v);
    ASSERT_TRUE(r.status().ok());
  }
  EXPECT_EQ(items, sync_items);
  EXPECT_TRUE(probe.delta() == sync_cost) << "depth=" << depth;

  // Mid-stream start (first block entered is in the middle of a window).
  IoProbe sync_mid(*dev);
  std::vector<uint32_t> sync_tail;
  {
    typename ExtVector<uint32_t>::Reader r(&vec, kItems / 3, 0);
    uint32_t v;
    while (r.Next(&v)) sync_tail.push_back(v);
  }
  IoStats sync_tail_cost = sync_mid.delta();
  IoProbe mid(*dev);
  std::vector<uint32_t> tail;
  {
    typename ExtVector<uint32_t>::Reader r(&vec, kItems / 3,
                                           static_cast<int>(depth));
    uint32_t v;
    while (r.Next(&v)) tail.push_back(v);
  }
  EXPECT_EQ(tail, sync_tail);
  EXPECT_TRUE(mid.delta() == sync_tail_cost);
  dev->set_io_engine(nullptr);
}

TEST(ReaderPrefetch, MemoryDeviceDepthSweep) {
  // Block of 24 bytes holds exactly 6 items; also try 20 (slack bytes).
  for (size_t bs : {24u, 20u, 256u}) {
    for (size_t depth : {1u, 2u, 3u, 8u, 64u}) {
      MemoryBlockDevice dev(bs);
      CheckPrefetchScanIdentity(&dev, nullptr, depth);
    }
  }
}

TEST(ReaderPrefetch, FileDeviceSyncBatched) {
  for (size_t depth : {1u, 4u, 16u}) {
    FileBlockDevice dev(ScratchPath("scan_sync"), 128);
    ASSERT_TRUE(dev.valid());
    CheckPrefetchScanIdentity(&dev, nullptr, depth);
  }
}

TEST(ReaderPrefetch, FileDeviceWithEngine) {
  IoEngine engine(2);
  for (size_t depth : {1u, 4u, 16u}) {
    FileBlockDevice dev(ScratchPath("scan_async"), 128);
    ASSERT_TRUE(dev.valid());
    CheckPrefetchScanIdentity(&dev, &engine, depth);
  }
}

TEST(ReaderPrefetch, SeekAndPeekMatchSyncCosts) {
  IoEngine engine(2);
  FileBlockDevice dev(ScratchPath("seek"), 64);  // 8 items per block
  dev.set_io_engine(&engine);
  ExtVector<uint64_t> vec(&dev);
  std::vector<uint64_t> data(400);
  std::iota(data.begin(), data.end(), 1000);
  ASSERT_TRUE(vec.AppendAll(data.data(), data.size()).ok());

  // A jumpy access script: forward scan, backward seek, far seek, peeks.
  auto run_script = [&](int depth, std::vector<uint64_t>* out,
                        IoStats* cost) {
    IoProbe probe(dev);
    typename ExtVector<uint64_t>::Reader r(&vec, 0, depth);
    uint64_t v;
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(r.Next(&v));
      out->push_back(v);
    }
    r.Seek(5);  // backward, outside the current block
    ASSERT_TRUE(r.Next(&v));
    out->push_back(v);
    r.Seek(333);  // far forward
    ASSERT_TRUE(r.Peek(&v));
    out->push_back(v);
    ASSERT_TRUE(r.Next(&v));
    out->push_back(v);
    while (r.Next(&v)) out->push_back(v);  // drain to the end
    ASSERT_TRUE(r.status().ok());
    *cost = probe.delta();
  };
  std::vector<uint64_t> sync_out, pf_out;
  IoStats sync_cost, pf_cost;
  run_script(0, &sync_out, &sync_cost);
  run_script(6, &pf_out, &pf_cost);
  EXPECT_EQ(pf_out, sync_out);
  EXPECT_TRUE(pf_cost == sync_cost);
  dev.set_io_engine(nullptr);
}

// --------------------------------------------------- writer write-behind

TEST(WriterWriteBehind, ContentsAndCostsMatchSync) {
  IoEngine engine(2);
  for (size_t depth : {1u, 4u, 16u}) {
    FileBlockDevice sync_dev(ScratchPath("wb_sync"), 96);
    FileBlockDevice async_dev(ScratchPath("wb_async"), 96);
    async_dev.set_io_engine(&engine);
    std::vector<uint32_t> data(5000);
    std::iota(data.begin(), data.end(), 7);

    ExtVector<uint32_t> sync_vec(&sync_dev);
    ASSERT_TRUE(sync_vec.AppendAll(data.data(), data.size()).ok());

    ExtVector<uint32_t> async_vec(&async_dev);
    async_vec.set_prefetch_depth(depth);
    ASSERT_TRUE(async_vec.AppendAll(data.data(), data.size()).ok());

    EXPECT_TRUE(sync_dev.stats() == async_dev.stats()) << "depth=" << depth;
    std::vector<uint32_t> back;
    ASSERT_TRUE(async_vec.ReadAll(&back).ok());
    EXPECT_EQ(back, data);
    async_dev.set_io_engine(nullptr);
  }
}

TEST(WriterWriteBehind, ResumingPartialTailStaysCorrect) {
  MemoryBlockDevice dev(64);  // 8 u64 per block... 64/8 = 8
  ExtVector<uint64_t> vec(&dev);
  vec.set_prefetch_depth(4);
  std::vector<uint64_t> first(13), second(29);
  std::iota(first.begin(), first.end(), 0);
  std::iota(second.begin(), second.end(), 100);
  ASSERT_TRUE(vec.AppendAll(first.data(), first.size()).ok());
  // Tail is mid-block: the second writer takes the synchronous resume
  // path and must still produce the concatenation.
  ASSERT_TRUE(vec.AppendAll(second.data(), second.size()).ok());
  std::vector<uint64_t> all;
  ASSERT_TRUE(vec.ReadAll(&all).ok());
  std::vector<uint64_t> want = first;
  want.insert(want.end(), second.begin(), second.end());
  EXPECT_EQ(all, want);
}

// ------------------------------------------------------ parallel striping

TEST(StripedDevice, FileBackedChildrenRoundTrip) {
  const size_t kDisks = 4, kChild = 64;
  auto build = [&](IoEngine* engine) {
    std::vector<std::unique_ptr<BlockDevice>> disks;
    for (size_t d = 0; d < kDisks; ++d) {
      disks.push_back(std::make_unique<FileBlockDevice>(
          ScratchPath(("stripe" + std::to_string(d) +
                       (engine != nullptr ? "a" : "s"))
                          .c_str()),
          kChild));
    }
    auto dev = std::make_unique<StripedDevice>(std::move(disks));
    if (engine != nullptr) dev->set_io_engine(engine);
    return dev;
  };
  IoEngine engine(kDisks);
  auto seq = build(nullptr);
  auto par = build(&engine);
  ASSERT_EQ(seq->block_size(), kDisks * kChild);

  Rng rng(99);
  const size_t kLogical = 32;
  std::vector<std::vector<char>> blocks(kLogical);
  for (size_t i = 0; i < kLogical; ++i) {
    uint64_t sid = seq->Allocate(), pid = par->Allocate();
    ASSERT_EQ(sid, pid);
    blocks[i].resize(seq->block_size());
    for (auto& c : blocks[i]) c = static_cast<char>(rng.Next());
    ASSERT_TRUE(seq->Write(sid, blocks[i].data()).ok());
    ASSERT_TRUE(par->Write(pid, blocks[i].data()).ok());
  }
  std::vector<char> buf(seq->block_size());
  for (size_t i = 0; i < kLogical; ++i) {
    ASSERT_TRUE(par->Read(i, buf.data()).ok());
    EXPECT_EQ(0, std::memcmp(buf.data(), blocks[i].data(), buf.size()));
  }
  // Concurrency must not change the accounting: parent counts D physical
  // blocks but ONE parallel step per logical transfer, children balanced.
  ASSERT_TRUE(seq->Read(0, buf.data()).ok());  // rebalance read counts
  EXPECT_EQ(par->stats().parallel_writes, kLogical);
  EXPECT_EQ(par->stats().block_writes, kLogical * kDisks);
  EXPECT_EQ(par->stats().parallel_reads, kLogical);
  EXPECT_EQ(par->stats().block_reads, kLogical * kDisks);
  for (size_t d = 0; d < kDisks; ++d) {
    EXPECT_TRUE(par->disk_stats(d).block_writes == kLogical);
  }
  par->set_io_engine(nullptr);
}

// --------------------------------------------------------- sort identity

TEST(SortPrefetchStress, StatsBitIdenticalAndOutputSorted) {
  IoEngine engine(2);
  const size_t kBlock = 512, kMem = 16 * 1024;
  const size_t kItems = 40000;
  Rng rng(2024);
  std::vector<uint64_t> data(kItems);
  for (auto& x : data) x = rng.Next() % 100000;

  auto run_sort = [&](FileBlockDevice* dev, size_t depth, IoStats* cost,
                      std::vector<uint64_t>* out_items,
                      size_t* merge_passes) {
    ExtVector<uint64_t> input(dev);
    ASSERT_TRUE(input.AppendAll(data.data(), data.size()).ok());
    ExternalSorter<uint64_t> sorter(dev, kMem);
    sorter.set_prefetch_depth(depth);
    ExtVector<uint64_t> out(dev);
    IoProbe probe(*dev);
    ASSERT_TRUE(sorter.Sort(input, &out).ok());
    *cost = probe.delta();
    *merge_passes = sorter.metrics().merge_passes;
    ASSERT_TRUE(out.ReadAll(out_items).ok());
  };

  FileBlockDevice sync_dev(ScratchPath("sort_sync"), kBlock);
  IoStats sync_cost;
  std::vector<uint64_t> sync_out;
  size_t sync_passes;
  run_sort(&sync_dev, 0, &sync_cost, &sync_out, &sync_passes);

  FileBlockDevice async_dev(ScratchPath("sort_async"), kBlock);
  async_dev.set_io_engine(&engine);
  IoStats async_cost;
  std::vector<uint64_t> async_out;
  size_t async_passes;
  run_sort(&async_dev, 4, &async_cost, &async_out, &async_passes);

  std::vector<uint64_t> want = data;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(sync_out, want);
  EXPECT_EQ(async_out, want);
  EXPECT_EQ(sync_passes, async_passes);
  // The headline contract: overlap changed wall-clock only. Every counter
  // — block, parallel, byte, read and write — is bit-identical.
  EXPECT_TRUE(sync_cost == async_cost)
      << "sync " << sync_cost.ToString() << " vs async "
      << async_cost.ToString();
  async_dev.set_io_engine(nullptr);
}

// ------------------------------------------------------ transport backends

bool IoUringUsable() {
  return IoRing::CompiledIn() && IoRing::KernelSupported();
}

/// Backend axis: every identity contract must hold regardless of which
/// transport carries the physical transfers. kIoUring instances skip
/// gracefully on kernels without io_uring.
class BackendAxis : public ::testing::TestWithParam<IoBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackend::kIoUring && !IoUringUsable()) {
      GTEST_SKIP() << "io_uring not available on this kernel/build";
    }
  }
};

TEST_P(BackendAxis, EngineReportsSelectedBackend) {
  IoEngine engine(2, /*disk_inflight_cap=*/1, GetParam());
  EXPECT_EQ(engine.backend(), GetParam());
  EXPECT_EQ(engine.ring() != nullptr, GetParam() == IoBackend::kIoUring);
}

TEST_P(BackendAxis, ScanIdentityHoldsOnBackend) {
  IoEngine engine(2, /*disk_inflight_cap=*/1, GetParam());
  for (size_t depth : {1u, 4u, 16u}) {
    FileBlockDevice dev(ScratchPath("backend_scan"), 128);
    ASSERT_TRUE(dev.valid());
    CheckPrefetchScanIdentity(&dev, &engine, depth);
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, BackendAxis,
                         ::testing::Values(IoBackend::kWorkerPool,
                                           IoBackend::kIoUring),
                         [](const ::testing::TestParamInfo<IoBackend>& info) {
                           return info.param == IoBackend::kIoUring
                                      ? "IoUring"
                                      : "WorkerPool";
                         });

// Full write+scan+sort workload on a file device, once per backend:
// IoStats must be bit-identical — the transport moves bytes, never costs.
TEST(BackendIdentity, WorkerPoolAndIoUringBitIdentical) {
  if (!IoUringUsable()) {
    GTEST_SKIP() << "io_uring not available on this kernel/build";
  }
  auto run = [](IoBackend backend, const char* tag, bool direct,
                std::vector<uint64_t>* out) {
    IoEngine engine(2, /*disk_inflight_cap=*/2, backend);
    FileBlockDevice dev(ScratchPath(tag), 512, /*unlink_on_close=*/true,
                        /*direct_io=*/direct);
    EXPECT_TRUE(dev.valid());
    dev.set_io_engine(&engine);
    Rng rng(77);
    std::vector<uint64_t> data(20000);
    for (auto& v : data) v = rng.Next();
    ExtVector<uint64_t> input(&dev);
    input.set_prefetch_depth(8);
    IoProbe probe(dev);
    EXPECT_TRUE(input.AppendAll(data.data(), data.size()).ok());
    ExternalSorter<uint64_t> sorter(&dev, /*memory=*/8 * 1024);
    sorter.set_prefetch_depth(8);
    ExtVector<uint64_t> sorted(&dev);
    EXPECT_TRUE(sorter.Sort(input, &sorted).ok());
    EXPECT_TRUE(sorted.ReadAll(out).ok());
    IoStats cost = probe.delta();
    dev.set_io_engine(nullptr);
    return cost;
  };
  for (bool direct : {false, true}) {
    std::vector<uint64_t> wp_out, ur_out;
    IoStats wp = run(IoBackend::kWorkerPool,
                     direct ? "bid_wp_d" : "bid_wp", direct, &wp_out);
    IoStats ur = run(IoBackend::kIoUring, direct ? "bid_ur_d" : "bid_ur",
                     direct, &ur_out);
    EXPECT_TRUE(std::is_sorted(wp_out.begin(), wp_out.end()));
    EXPECT_EQ(wp_out, ur_out) << "direct=" << direct;
    EXPECT_TRUE(wp == ur) << "direct=" << direct << " worker-pool "
                          << wp.ToString() << " vs io_uring "
                          << ur.ToString();
  }
}

// Requesting io_uring on a host without it must degrade to the worker
// pool silently — same API, same stats, just the portable transport.
TEST(BackendFallback, ForcedUnavailableFallsBackToWorkerPool) {
  IoRing::ForceUnavailableForTest(true);
  {
    IoEngine engine(2, /*disk_inflight_cap=*/1, IoBackend::kIoUring);
    EXPECT_EQ(engine.backend(), IoBackend::kWorkerPool);
    EXPECT_EQ(engine.ring(), nullptr);
    FileBlockDevice dev(ScratchPath("fallback"), 128);
    ASSERT_TRUE(dev.valid());
    CheckPrefetchScanIdentity(&dev, &engine, /*depth=*/4);
  }
  IoRing::ForceUnavailableForTest(false);
}

// --------------------------------------------------------------- PageRef

TEST(PageRef, SelfMoveKeepsPin) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 1);
  uint64_t id;
  char* d;
  ASSERT_TRUE(pool.PinNew(&id, &d).ok());
  pool.Unpin(id, true);
  PageRef ref;
  ASSERT_TRUE(PageRef::Acquire(&pool, id, &ref).ok());
  PageRef& alias = ref;
  ref = std::move(alias);  // must not release the pin
  EXPECT_TRUE(ref.valid());
  uint64_t id2;
  // The only frame is still pinned by ref.
  EXPECT_TRUE(pool.PinNew(&id2, &d).IsBusy());
  ref.Release();
  EXPECT_TRUE(pool.PinNew(&id2, &d).ok());
  pool.Unpin(id2, false);
}

TEST(PageRef, MovedFromRefIsCleanAndInert) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 2);
  uint64_t id;
  char* d;
  ASSERT_TRUE(pool.PinNew(&id, &d).ok());
  pool.Unpin(id, true);
  ASSERT_TRUE(pool.FlushAll().ok());

  PageRef a;
  ASSERT_TRUE(PageRef::Acquire(&pool, id, &a).ok());
  a.MarkDirty();
  PageRef b = std::move(a);  // dirty travels with the pin to b
  EXPECT_FALSE(a.valid());
  a.Release();  // must be a no-op, not an unpin of b's page
  EXPECT_TRUE(b.valid());
  uint64_t id2;
  EXPECT_TRUE(pool.PinNew(&id2, &d).ok());  // one frame still free
  pool.Unpin(id2, false);
  ASSERT_TRUE(pool.FlushAll().ok());  // settle id2's new-page dirt
  // b's dirty bit reaches the device exactly once, at b's release.
  IoProbe probe(dev);
  b.Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(probe.delta().block_writes, 1u);
}

// ------------------------------------------------------ batched FlushAll

TEST(BufferPool, FlushAllCoalescesWithIdenticalCharge) {
  FileBlockDevice dev(ScratchPath("flush"), 64);
  BufferPool pool(&dev, 8);
  std::vector<uint64_t> ids(8);
  for (size_t i = 0; i < 8; ++i) {
    char* d;
    ASSERT_TRUE(pool.PinNew(&ids[i], &d).ok());  // PinNew pages start dirty
    d[0] = static_cast<char>('a' + i);
    pool.Unpin(ids[i], false);
  }
  IoProbe probe(dev);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Dirty pages flush once each (same charge as the per-frame loop, now
  // one coalesced WriteBatch), and a second flush finds everything clean.
  EXPECT_EQ(probe.delta().block_writes, 8u);
  EXPECT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(probe.delta().block_writes, 8u);
  char buf[64];
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(dev.Read(ids[i], buf).ok());
    EXPECT_EQ(buf[0], static_cast<char>('a' + i));
  }
}

}  // namespace
}  // namespace vem
