// Tests for the PDM substrate: devices, striping, buffer pool, accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "io/buffer_pool.h"
#include "io/file_block_device.h"
#include "io/memory_block_device.h"
#include "io/striped_device.h"
#include "util/random.h"

namespace vem {
namespace {

TEST(MemoryBlockDevice, RoundTrip) {
  MemoryBlockDevice dev(64);
  uint64_t id = dev.Allocate();
  char out[64], in[64];
  for (int i = 0; i < 64; ++i) out[i] = static_cast<char>(i);
  ASSERT_TRUE(dev.Write(id, out).ok());
  ASSERT_TRUE(dev.Read(id, in).ok());
  EXPECT_EQ(0, std::memcmp(out, in, 64));
  EXPECT_EQ(dev.stats().block_reads, 1u);
  EXPECT_EQ(dev.stats().block_writes, 1u);
  EXPECT_EQ(dev.stats().bytes_read, 64u);
}

TEST(MemoryBlockDevice, ReadUnallocatedFails) {
  MemoryBlockDevice dev(64);
  char buf[64];
  EXPECT_TRUE(dev.Read(7, buf).IsInvalidArgument());
}

TEST(MemoryBlockDevice, ReadNeverWrittenIsCorruption) {
  MemoryBlockDevice dev(64);
  uint64_t id = dev.Allocate();
  char buf[64];
  EXPECT_TRUE(dev.Read(id, buf).IsCorruption());
}

TEST(MemoryBlockDevice, FreeAndReuse) {
  MemoryBlockDevice dev(64);
  uint64_t a = dev.Allocate();
  uint64_t b = dev.Allocate();
  EXPECT_EQ(dev.num_allocated(), 2u);
  dev.Free(a);
  EXPECT_EQ(dev.num_allocated(), 1u);
  uint64_t c = dev.Allocate();
  EXPECT_EQ(c, a);  // recycled
  EXPECT_EQ(dev.peak_allocated(), 2u);
  (void)b;
}

TEST(MemoryBlockDevice, FreedBlockMustBeRewrittenBeforeRead) {
  MemoryBlockDevice dev(64);
  uint64_t a = dev.Allocate();
  char buf[64] = {};
  ASSERT_TRUE(dev.Write(a, buf).ok());
  dev.Free(a);
  uint64_t b = dev.Allocate();
  ASSERT_EQ(a, b);
  EXPECT_TRUE(dev.Read(b, buf).IsCorruption());  // stale data not observable
}

TEST(FileBlockDevice, RoundTrip) {
  FileBlockDevice dev("/tmp/vem_io_test.bin", 128);
  ASSERT_TRUE(dev.valid());
  uint64_t id0 = dev.Allocate();
  uint64_t id1 = dev.Allocate();
  std::vector<char> a(128, 'a'), b(128, 'b'), r(128);
  ASSERT_TRUE(dev.Write(id0, a.data()).ok());
  ASSERT_TRUE(dev.Write(id1, b.data()).ok());
  ASSERT_TRUE(dev.Read(id0, r.data()).ok());
  EXPECT_EQ(r, a);
  ASSERT_TRUE(dev.Read(id1, r.data()).ok());
  EXPECT_EQ(r, b);
  EXPECT_EQ(dev.stats().block_ios(), 4u);
}

TEST(StripedDevice, LogicalBlockSpansAllDisks) {
  const size_t kDisks = 4, kChildBlock = 32;
  StripedDevice dev(kDisks, kChildBlock);
  EXPECT_EQ(dev.block_size(), kDisks * kChildBlock);
  uint64_t id = dev.Allocate();
  std::vector<char> out(dev.block_size()), in(dev.block_size());
  std::iota(out.begin(), out.end(), 0);
  ASSERT_TRUE(dev.Write(id, out.data()).ok());
  ASSERT_TRUE(dev.Read(id, in.data()).ok());
  EXPECT_EQ(out, in);
  // One parallel step but D physical transfers, per direction.
  EXPECT_EQ(dev.stats().parallel_reads, 1u);
  EXPECT_EQ(dev.stats().parallel_writes, 1u);
  EXPECT_EQ(dev.stats().block_reads, kDisks);
  EXPECT_EQ(dev.stats().block_writes, kDisks);
  // Load is perfectly balanced.
  for (size_t d = 0; d < kDisks; ++d) {
    EXPECT_EQ(dev.disk_stats(d).block_reads, 1u);
    EXPECT_EQ(dev.disk_stats(d).block_writes, 1u);
  }
}

TEST(IoProbe, MeasuresDelta) {
  MemoryBlockDevice dev(64);
  uint64_t id = dev.Allocate();
  char buf[64] = {};
  ASSERT_TRUE(dev.Write(id, buf).ok());
  IoProbe probe(dev);
  ASSERT_TRUE(dev.Read(id, buf).ok());
  ASSERT_TRUE(dev.Read(id, buf).ok());
  EXPECT_EQ(probe.delta().block_reads, 2u);
  EXPECT_EQ(probe.delta().block_writes, 0u);
}

// ---------------------------------------------------------------- BufferPool

TEST(BufferPool, PinNewZeroesAndCaches) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 4);
  uint64_t id;
  char* data;
  ASSERT_TRUE(pool.PinNew(&id, &data).ok());
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(data[i], 0);
  data[0] = 'x';
  pool.Unpin(id, /*dirty=*/true);
  // Re-pin: must hit cache, no device read.
  IoProbe probe(dev);
  char* data2;
  ASSERT_TRUE(pool.Pin(id, &data2).ok());
  EXPECT_EQ(data2[0], 'x');
  EXPECT_EQ(probe.delta().block_reads, 0u);
  pool.Unpin(id, false);
}

TEST(BufferPool, EvictionWritesBackDirty) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 2);
  uint64_t ids[3];
  for (auto& id : ids) {
    char* d;
    ASSERT_TRUE(pool.PinNew(&id, &d).ok());
    d[0] = static_cast<char>('a' + (&id - ids));
    pool.Unpin(id, true);
  }
  // Pool held 2 frames; pinning the 3rd evicted one dirty page => 1 write.
  EXPECT_GE(dev.stats().block_writes, 1u);
  // All three blocks must be readable with correct content after flush.
  ASSERT_TRUE(pool.FlushAll().ok());
  for (int i = 0; i < 3; ++i) {
    char buf[64];
    ASSERT_TRUE(dev.Read(ids[i], buf).ok());
    EXPECT_EQ(buf[0], 'a' + i);
  }
}

TEST(BufferPool, AllPinnedReturnsBusy) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 2);
  uint64_t id1, id2, id3;
  char* d;
  ASSERT_TRUE(pool.PinNew(&id1, &d).ok());
  ASSERT_TRUE(pool.PinNew(&id2, &d).ok());
  EXPECT_TRUE(pool.PinNew(&id3, &d).IsBusy());
  pool.Unpin(id1, false);
  EXPECT_TRUE(pool.PinNew(&id3, &d).ok());
}

TEST(BufferPool, PinCountsNested) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 1);
  uint64_t id;
  char* d;
  ASSERT_TRUE(pool.PinNew(&id, &d).ok());
  ASSERT_TRUE(pool.Pin(id, &d).ok());  // second pin on same page is fine
  pool.Unpin(id, false);
  // Still pinned once; the only frame is unavailable.
  uint64_t id2;
  EXPECT_TRUE(pool.PinNew(&id2, &d).IsBusy());
  pool.Unpin(id, false);
  EXPECT_TRUE(pool.PinNew(&id2, &d).ok());
}

TEST(BufferPool, HitRateTracking) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 8);
  uint64_t id;
  char* d;
  ASSERT_TRUE(pool.PinNew(&id, &d).ok());
  pool.Unpin(id, true);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Pin(id, &d).ok());
    pool.Unpin(id, false);
  }
  EXPECT_EQ(pool.hits(), 10u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPool, ScanWithLruRespectsMemoryBound) {
  // Touch 100 blocks round-robin with an 8-frame pool: every access past
  // the first lap of 8 must miss (no magic caching beyond M/B frames).
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 8);
  std::vector<uint64_t> ids(100);
  for (auto& id : ids) {
    char* d;
    ASSERT_TRUE(pool.PinNew(&id, &d).ok());
    pool.Unpin(id, true);
  }
  IoProbe probe(dev);
  char* d;
  for (uint64_t id : ids) {
    ASSERT_TRUE(pool.Pin(id, &d).ok());
    pool.Unpin(id, false);
  }
  EXPECT_GE(probe.delta().block_reads, 92u);  // at least 100 - 8 misses
}

TEST(PageRef, ReleasesOnDestruction) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 1);
  uint64_t id;
  {
    char* d;
    ASSERT_TRUE(pool.PinNew(&id, &d).ok());
    pool.Unpin(id, true);
  }
  {
    PageRef ref;
    ASSERT_TRUE(PageRef::Acquire(&pool, id, &ref).ok());
    ref.data()[1] = 'q';
    ref.MarkDirty();
  }  // ref destructor unpins
  uint64_t id2;
  char* d;
  EXPECT_TRUE(pool.PinNew(&id2, &d).ok());  // frame reusable => was unpinned
  pool.Unpin(id2, false);
}

// Property sweep: random pin/unpin traffic never corrupts page contents,
// across pool sizes.
class BufferPoolFuzz : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferPoolFuzz, RandomTrafficPreservesContents) {
  const size_t kFrames = GetParam();
  const size_t kBlocks = 64;
  MemoryBlockDevice dev(sizeof(uint64_t));
  BufferPool pool(&dev, kFrames);
  std::vector<uint64_t> ids(kBlocks);
  std::vector<uint64_t> shadow(kBlocks, 0);
  for (size_t i = 0; i < kBlocks; ++i) {
    char* d;
    ASSERT_TRUE(pool.PinNew(&ids[i], &d).ok());
    pool.Unpin(ids[i], true);
  }
  Rng rng(GetParam() * 977 + 13);
  for (int step = 0; step < 5000; ++step) {
    size_t i = rng.Uniform(kBlocks);
    char* d;
    ASSERT_TRUE(pool.Pin(ids[i], &d).ok());
    uint64_t cur;
    std::memcpy(&cur, d, sizeof(cur));
    ASSERT_EQ(cur, shadow[i]) << "block " << i << " step " << step;
    if (rng.Uniform(2) == 0) {
      shadow[i] = rng.Next();
      std::memcpy(d, &shadow[i], sizeof(uint64_t));
      pool.Unpin(ids[i], true);
    } else {
      pool.Unpin(ids[i], false);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, BufferPoolFuzz,
                         ::testing::Values(1, 2, 3, 8, 64));

}  // namespace
}  // namespace vem
