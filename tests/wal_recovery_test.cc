// Durability-plane tests: WAL format and manager, group commit,
// DurableBlockDevice journaling + ARIES-lite recovery, the crash-safety
// satellites (sticky errors, fsync/fdatasync split, torn writes), and
// the kill-at-random-point harness that proves the headline claim:
// every acknowledged commit survives SIGKILL bit-identically, every
// unacknowledged one vanishes.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/buffer_pool.h"
#include "io/faulty_device.h"
#include "io/file_block_device.h"
#include "io/memory_block_device.h"
#include "util/options.h"
#include "wal/durable_block_device.h"
#include "wal/recovery.h"
#include "wal/wal_manager.h"

namespace vem {
namespace {

std::string ScratchPath(const char* name) {
  return std::string("/tmp/vem_wal_") + name + ".bin";
}

void FillBytes(char* buf, size_t n, uint64_t seed) {
  uint64_t x = seed + 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < n; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    buf[i] = static_cast<char>((x * 0x2545F4914F6CDD1Dull) >> 56);
  }
}

// ------------------------------------------------------------- format

TEST(WalFormat, CrcDetectsCorruption) {
  char payload[64];
  FillBytes(payload, sizeof(payload), 7);
  wal::RecordHeader h{};
  h.magic = wal::kWalMagic;
  h.payload_size = sizeof(payload);
  h.type = static_cast<uint32_t>(wal::RecordType::kBlockImage);
  h.lsn = wal::kHeaderSize + sizeof(payload);
  h.txn = 3;
  h.block_id = 9;
  h.crc = wal::RecordCrc(h, payload, sizeof(payload));
  EXPECT_EQ(h.crc, wal::RecordCrc(h, payload, sizeof(payload)));
  payload[10] ^= 1;  // payload corruption
  EXPECT_NE(h.crc, wal::RecordCrc(h, payload, sizeof(payload)));
  payload[10] ^= 1;
  h.txn ^= 1;  // header corruption
  EXPECT_NE(h.crc, wal::RecordCrc(h, payload, sizeof(payload)));
}

// ------------------------------------------------- append, scan, reset

TEST(WalManagerTest, AppendFlushScanRoundTrip) {
  MemoryBlockDevice log(256);
  WalManager wal(&log, WalManager::Config{});
  ASSERT_TRUE(wal.valid());

  char payload[100];
  FillBytes(payload, sizeof(payload), 42);
  uint64_t lsn = 0;
  ASSERT_TRUE(wal.Append(wal::RecordType::kBlockImage, /*txn=*/7,
                         /*block_id=*/3, payload, sizeof(payload), &lsn)
                  .ok());
  EXPECT_EQ(lsn, wal::kHeaderSize + sizeof(payload));
  EXPECT_EQ(wal.last_lsn(), lsn);
  EXPECT_EQ(wal.durable_lsn(), 0u);  // append alone is not durable

  ASSERT_TRUE(wal.Commit(7).ok());
  EXPECT_EQ(wal.durable_lsn(), wal.last_lsn());
  EXPECT_GE(wal.fsync_count(), 1u);

  // The scanner sees exactly the two records (pads filtered out).
  wal::WalScanner scan(&log);
  wal::WalRecord rec;
  bool valid = false;
  ASSERT_TRUE(scan.Next(&rec, &valid).ok());
  ASSERT_TRUE(valid);
  EXPECT_EQ(rec.type(), wal::RecordType::kBlockImage);
  EXPECT_EQ(rec.header.txn, 7u);
  EXPECT_EQ(rec.header.block_id, 3u);
  ASSERT_EQ(rec.payload.size(), sizeof(payload));
  EXPECT_EQ(std::memcmp(rec.payload.data(), payload, sizeof(payload)), 0);
  ASSERT_TRUE(scan.Next(&rec, &valid).ok());
  ASSERT_TRUE(valid);
  EXPECT_EQ(rec.type(), wal::RecordType::kCommit);
  EXPECT_EQ(rec.header.txn, 7u);
  ASSERT_TRUE(scan.Next(&rec, &valid).ok());
  EXPECT_FALSE(valid);
  EXPECT_FALSE(scan.torn_tail());
}

TEST(WalManagerTest, ResetTruncatesLog) {
  MemoryBlockDevice log(256);
  WalManager wal(&log, WalManager::Config{});
  char payload[16] = {};
  ASSERT_TRUE(wal.Append(wal::RecordType::kBlockImage, 1, 0, payload,
                         sizeof(payload), nullptr)
                  .ok());
  ASSERT_TRUE(wal.Commit(1).ok());
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.last_lsn(), 0u);
  EXPECT_EQ(wal.durable_lsn(), 0u);
  wal::WalScanner scan(&log);
  wal::WalRecord rec;
  bool valid = true;
  ASSERT_TRUE(scan.Next(&rec, &valid).ok());
  EXPECT_FALSE(valid);
  EXPECT_FALSE(scan.torn_tail());
}

// ------------------------------------------------------- group commit

TEST(GroupCommitTest, ConcurrentCommitsShareFsyncs) {
  MemoryBlockDevice log(512);
  WalManager::Config cfg;
  cfg.group_commit_us = 100;  // widen the batch window a little
  WalManager wal(&log, cfg);

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &failures, t] {
      char payload[32];
      FillBytes(payload, sizeof(payload), t);
      if (!wal.Append(wal::RecordType::kBlockImage, t + 1, t, payload,
                      sizeof(payload), nullptr)
               .ok() ||
          !wal.Commit(t + 1).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // The batching bound: every commit durable, but between 1 fsync
  // (perfect batch) and kThreads fsyncs (no batching), never more.
  EXPECT_GE(wal.fsync_count(), 1u);
  EXPECT_LE(wal.fsync_count(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(wal.durable_lsn(), wal.last_lsn());
}

struct FakeWalClock final : WalClock {
  std::atomic<uint64_t> sleeps{0};
  std::atomic<uint64_t> total_us{0};
  void SleepMicros(uint64_t us) override {
    sleeps.fetch_add(1);
    total_us.fetch_add(us);
  }
};

TEST(GroupCommitTest, WindowRidesInjectedClock) {
  MemoryBlockDevice log(512);
  FakeWalClock clock;
  WalManager::Config cfg;
  cfg.group_commit_us = 5000;
  cfg.clock = &clock;
  WalManager wal(&log, cfg);
  ASSERT_TRUE(wal.Commit(1).ok());
  // The leader waited exactly the configured window — on the fake
  // clock, so the test itself never sleeps.
  EXPECT_GE(clock.sleeps.load(), 1u);
  EXPECT_EQ(clock.total_us.load() / clock.sleeps.load(), 5000u);
  EXPECT_EQ(wal.fsync_count(), 1u);
  EXPECT_EQ(wal.durable_lsn(), wal.last_lsn());
}

// ------------------------------------- FileBlockDevice crash-safety

TEST(FileDeviceDurability, StickyLastErrorOnOpenFailure) {
  FileBlockDevice dev("/vem_no_such_dir_zz9/file.bin", 512);
  EXPECT_FALSE(dev.valid());
  EXPECT_FALSE(dev.last_error().ok());
  // Sticky: still reported later, not cleared by the query.
  EXPECT_FALSE(dev.last_error().ok());
}

TEST(FileDeviceDurability, FsyncForGrowthFdatasyncForOverwrite) {
  FileBlockDevice dev(ScratchPath("syncsplit"), 512);
  ASSERT_TRUE(dev.valid());
  std::vector<char> buf(512);
  FillBytes(buf.data(), buf.size(), 1);
  uint64_t id = dev.Allocate();
  ASSERT_TRUE(dev.Write(id, buf.data()).ok());
  // First barrier after an append: the file grew, full fsync required
  // (file-length metadata must be durable too).
  ASSERT_TRUE(dev.Sync().ok());
  EXPECT_EQ(dev.full_syncs(), 1u);
  EXPECT_EQ(dev.data_syncs(), 0u);
  // Overwrite in place: no growth, the cheaper fdatasync suffices.
  ASSERT_TRUE(dev.Write(id, buf.data()).ok());
  ASSERT_TRUE(dev.Sync().ok());
  EXPECT_EQ(dev.full_syncs(), 1u);
  EXPECT_EQ(dev.data_syncs(), 1u);
  EXPECT_TRUE(dev.last_error().ok());
}

// --------------------------------------------- torn-write recovery

TEST(TornWriteTest, RecoveryKeepsPriorCommitsDropsTornTail) {
  MemoryBlockDevice logmem(512);
  FaultyBlockDevice faultylog(&logmem);
  WalManager wal(&faultylog, WalManager::Config{});
  MemoryBlockDevice data(512);
  DurableBlockDevice dev(&data, &wal);
  ASSERT_TRUE(dev.valid());

  std::vector<char> img_a(512), img_b(512);
  FillBytes(img_a.data(), img_a.size(), 0xA);
  FillBytes(img_b.data(), img_b.size(), 0xB);
  uint64_t id = dev.Allocate();
  ASSERT_TRUE(dev.Write(id, img_a.data()).ok());
  ASSERT_TRUE(dev.Commit().ok());

  // Tear the NEXT log write mid-block: 100 bytes of new content land,
  // the tail keeps stale bytes, and the device reports the crash.
  faultylog.SetTornWrite(faultylog.writes_seen() + 1, 100);
  ASSERT_TRUE(dev.Write(id, img_b.data()).ok());
  EXPECT_FALSE(dev.Commit().ok());

  // Recover from the raw log medium into a fresh data device: the CRC
  // scan must stop at the torn record, keep txn 1, and drop txn 2.
  WalManager wal2(&logmem, WalManager::Config{});
  MemoryBlockDevice data2(512);
  RecoveryResult res;
  ASSERT_TRUE(RecoverWal(&wal2, &data2, &res).ok());
  EXPECT_TRUE(res.torn_tail);
  EXPECT_EQ(res.committed_txns, 1u);
  EXPECT_EQ(res.redone_blocks, 1u);
  std::vector<char> got(512);
  ASSERT_TRUE(data2.Read(id, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img_a.data(), 512), 0);
}

// ------------------------------------ DurableBlockDevice semantics

TEST(DurableDeviceTest, OverlayServesUncommittedCommitApplies) {
  MemoryBlockDevice logdev(512), datadev(512);
  WalManager wal(&logdev, WalManager::Config{});
  DurableBlockDevice dev(&datadev, &wal);
  ASSERT_TRUE(dev.valid());

  std::vector<char> img(512), got(512);
  FillBytes(img.data(), img.size(), 5);
  uint64_t id = dev.Allocate();
  ASSERT_TRUE(dev.Write(id, img.data()).ok());
  EXPECT_EQ(dev.pending_blocks(), 1u);
  // The uncommitted image is readable through the wrapper...
  ASSERT_TRUE(dev.Read(id, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img.data(), 512), 0);
  // ...but has not touched the data device at all (no-steal: the inner
  // device does not even hold the block yet).
  EXPECT_EQ(datadev.num_allocated(), 0u);

  ASSERT_TRUE(dev.Commit().ok());
  EXPECT_EQ(dev.pending_blocks(), 0u);
  ASSERT_TRUE(datadev.Read(id, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img.data(), 512), 0);
  EXPECT_EQ(wal.durable_lsn(), wal.last_lsn());
}

TEST(DurableDeviceTest, UncommittedWritesVanishAcrossReopen) {
  const std::string base = ScratchPath("reopen");
  std::remove(base.c_str());
  std::remove((base + ".wal").c_str());
  Options opts;
  opts.block_size = 512;
  opts.enable_wal = true;

  std::vector<char> committed(512), uncommitted(512), got(512);
  FillBytes(committed.data(), committed.size(), 0xC0);
  FillBytes(uncommitted.data(), uncommitted.size(), 0xDE);
  uint64_t id;
  {
    DurableStorage st(base, opts);
    ASSERT_TRUE(st.valid()) << st.status().ToString();
    id = st.device->Allocate();
    ASSERT_TRUE(st.device->Write(id, committed.data()).ok());
    ASSERT_TRUE(st.device->Commit().ok());
    // Journaled but never committed: must not survive.
    ASSERT_TRUE(st.device->Write(id, uncommitted.data()).ok());
  }  // abandoned without Commit — the "crash"
  {
    DurableStorage st(base, opts);
    ASSERT_TRUE(st.valid()) << st.status().ToString();
    ASSERT_TRUE(st.device->Read(id, got.data()).ok());
    EXPECT_EQ(std::memcmp(got.data(), committed.data(), 512), 0);
    EXPECT_EQ(st.device->num_allocated(), 1u);
  }
  std::remove(base.c_str());
  std::remove((base + ".wal").c_str());
}

TEST(DurableDeviceTest, AllocationMapSurvivesReopen) {
  const std::string base = ScratchPath("allocmap");
  std::remove(base.c_str());
  std::remove((base + ".wal").c_str());
  Options opts;
  opts.block_size = 512;
  opts.enable_wal = true;

  std::vector<char> img(512), got(512);
  FillBytes(img.data(), img.size(), 3);
  {
    DurableStorage st(base, opts);
    ASSERT_TRUE(st.valid());
    uint64_t a = st.device->Allocate();
    uint64_t b = st.device->Allocate();
    uint64_t c = st.device->Allocate();
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(c, 2u);
    ASSERT_TRUE(st.device->Write(c, img.data()).ok());
    ASSERT_TRUE(st.device->Commit().ok());
    st.device->Free(b);
    ASSERT_TRUE(st.device->Commit().ok());
  }
  {
    DurableStorage st(base, opts);
    ASSERT_TRUE(st.valid());
    EXPECT_EQ(st.device->num_allocated(), 2u);
    // The freed id is reused, not leaked.
    EXPECT_EQ(st.device->Allocate(), 1u);
    ASSERT_TRUE(st.device->Read(2, got.data()).ok());
    EXPECT_EQ(std::memcmp(got.data(), img.data(), 512), 0);
  }
  std::remove(base.c_str());
  std::remove((base + ".wal").c_str());
}

// ----------------------------------------- pass-through identity

TEST(DurableDeviceTest, WalOffIsStatsInvisible) {
  auto workload = [](BlockDevice* d) {
    BufferPool pool(d, 4);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 8; ++i) {
      uint64_t id;
      char* data;
      ASSERT_TRUE(pool.PinNew(&id, &data).ok());
      FillBytes(data, d->block_size(), i);
      pool.Unpin(id, /*dirty=*/true);
      ids.push_back(id);
    }
    for (int i = 0; i < 8; i += 2) {
      char* data;
      ASSERT_TRUE(pool.Pin(ids[i], &data).ok());
      pool.Unpin(ids[i], /*dirty=*/false);
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  };
  MemoryBlockDevice raw(512);
  workload(&raw);

  MemoryBlockDevice inner(512);
  DurableBlockDevice wrapped(&inner, /*wal=*/nullptr);
  workload(&wrapped);

  // The pass-through wrapper is invisible: the inner device sees the
  // exact counters the bare device recorded, and the wrapper mirrors
  // them (the standing IoStats-identity invariant with WAL off).
  EXPECT_TRUE(inner.stats() == raw.stats());
  EXPECT_TRUE(wrapped.stats() == raw.stats());
}

// ---------------------------------------- BufferPool page-LSN gate

TEST(BufferPoolWalTest, FlushAllForcesJournalDurability) {
  MemoryBlockDevice logdev(512), datadev(512);
  WalManager wal(&logdev, WalManager::Config{});
  DurableBlockDevice dev(&datadev, &wal);
  ASSERT_TRUE(dev.valid());
  const uint64_t baseline = wal.durable_lsn();

  BufferPool pool(&dev, 4);
  uint64_t id;
  char* data;
  ASSERT_TRUE(pool.PinNew(&id, &data).ok());
  FillBytes(data, 512, 9);
  pool.Unpin(id, /*dirty=*/true);
  // Dirty in the pool: nothing journaled or forced yet.
  EXPECT_EQ(wal.durable_lsn(), baseline);

  ASSERT_TRUE(pool.FlushAll().ok());
  // The flush journaled the page image and gated on it: the log is
  // durable through everything the write-back appended.
  EXPECT_GT(wal.last_lsn(), baseline);
  EXPECT_EQ(wal.durable_lsn(), wal.last_lsn());
}

// ------------------------------------------- kill-point harness

// The child runs a deterministic seeded workload against DurableStorage
// and SIGKILLs itself at the Nth instrumented durability event (log
// block write, pre/post fsync, data apply). The parent recovers and
// checks that the surviving state equals the cumulative workload state
// after exactly k commits for some k in [max acked, max started] —
// acked commits durable (durability), unstarted ones absent (no
// phantoms), and never a partial transaction (atomicity).
constexpr size_t kKPBlockSize = 512;
constexpr int kKPBlocks = 6;
constexpr int kKPTxns = 10;

uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = a * 0x9E3779B97F4A7C15ull + b * 0xBF58476D1CE4E5B9ull +
               c * 0x94D049BB133111EBull + 1;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x;
}

bool TxnWritesBlock(uint64_t seed, int t, int b) {
  return b == (t % kKPBlocks) || Mix(seed, t, b) % 3 == 0;
}

void TxnBlockImage(uint64_t seed, int t, int b, char* buf) {
  FillBytes(buf, kKPBlockSize, Mix(seed, t, b));
}

// Expected content of block b after the first k transactions committed.
void ExpectedBlock(uint64_t seed, int k, int b, char* buf) {
  std::memset(buf, 0, kKPBlockSize);
  for (int t = 1; t <= k; ++t) {
    if (TxnWritesBlock(seed, t, b)) TxnBlockImage(seed, t, b, buf);
  }
}

int g_kp_events = 0;
int g_kp_kill_at = 0;
void KillPointHook() {
  if (++g_kp_events == g_kp_kill_at) raise(SIGKILL);
}

void AppendStatusLine(int fd, char tag, int value) {
  char line[32];
  int n = std::snprintf(line, sizeof(line), "%c %d\n", tag, value);
  (void)!write(fd, line, n);
}

// Runs in the forked child; never returns.
[[noreturn]] void KillPointChild(const std::string& base,
                                 const std::string& status_path,
                                 uint64_t seed, int kill_at) {
  int sfd = open(status_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (sfd < 0) _exit(10);
  g_kp_events = 0;
  g_kp_kill_at = kill_at;
  SetWalTestCrashHook(&KillPointHook);
  {
    Options opts;
    opts.block_size = kKPBlockSize;
    opts.enable_wal = true;
    DurableStorage st(base, opts);
    if (!st.valid()) _exit(11);
    for (int b = 0; b < kKPBlocks; ++b) st.device->Allocate();
    std::vector<char> buf(kKPBlockSize);
    for (int t = 1; t <= kKPTxns; ++t) {
      for (int b = 0; b < kKPBlocks; ++b) {
        if (!TxnWritesBlock(seed, t, b)) continue;
        TxnBlockImage(seed, t, b, buf.data());
        if (!st.device->Write(b, buf.data()).ok()) _exit(12);
      }
      AppendStatusLine(sfd, 'S', t);
      if (!st.device->Commit().ok()) _exit(13);
      AppendStatusLine(sfd, 'A', t);
    }
  }
  SetWalTestCrashHook(nullptr);
  AppendStatusLine(sfd, 'E', g_kp_events);
  close(sfd);
  _exit(0);
}

struct ChildOutcome {
  int max_started = 0;
  int max_acked = 0;
  int total_events = -1;  // -1 when the child died before finishing
};

ChildOutcome RunKillPointChild(const std::string& base, uint64_t seed,
                               int kill_at) {
  const std::string status_path = base + ".status";
  std::remove(base.c_str());
  std::remove((base + ".wal").c_str());
  std::remove(status_path.c_str());
  pid_t pid = fork();
  if (pid == 0) KillPointChild(base, status_path, seed, kill_at);
  EXPECT_GT(pid, 0);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  EXPECT_TRUE((WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) ||
              (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0))
      << "child ended unexpectedly: status=" << wstatus
      << " seed=" << seed << " kill_at=" << kill_at;
  ChildOutcome out;
  std::ifstream in(status_path);
  std::string tag;
  int value;
  while (in >> tag >> value) {
    if (tag == "S") out.max_started = std::max(out.max_started, value);
    if (tag == "A") out.max_acked = std::max(out.max_acked, value);
    if (tag == "E") out.total_events = value;
  }
  return out;
}

TEST(WalKillPointTest, AckedCommitsSurviveUnackedVanish) {
  const std::string base = ScratchPath("killpoint");
  uint64_t seed = 0xC0FFEE;
  if (const char* s = std::getenv("VEM_WAL_KILL_SEED")) {
    seed = std::strtoull(s, nullptr, 0);
  }
  int points = 100;
  if (const char* p = std::getenv("VEM_WAL_KILL_POINTS")) {
    points = std::atoi(p);
  }

  // Probe run: no kill, count the instrumented events of the workload.
  ChildOutcome probe = RunKillPointChild(base, seed, /*kill_at=*/0);
  ASSERT_GT(probe.total_events, 0) << "seed=" << seed;
  ASSERT_EQ(probe.max_acked, kKPTxns);
  const int total = probe.total_events;
  if (points > total) points = total;

  Options opts;
  opts.block_size = kKPBlockSize;
  opts.enable_wal = true;
  std::vector<char> got(kKPBlockSize), want(kKPBlockSize);

  for (int i = 0; i < points; ++i) {
    // Kill points distributed across the whole event range.
    int kill_at = 1 + static_cast<int>((static_cast<int64_t>(i) * total) /
                                       points);
    SCOPED_TRACE(testing::Message() << "seed=" << seed
                                    << " kill_at=" << kill_at << "/"
                                    << total << " (point " << i << ")");
    ChildOutcome out = RunKillPointChild(base, seed, kill_at);
    ASSERT_LE(out.max_acked, out.max_started);

    // Recover (DurableStorage construction replays the log).
    DurableStorage st(base, opts);
    ASSERT_TRUE(st.valid()) << st.status().ToString();

    // The recovered state must be the cumulative workload state after
    // exactly k commits, for a single k in [max_acked, max_started].
    int matched_k = -1;
    for (int k = out.max_acked; k <= out.max_started && matched_k < 0;
         ++k) {
      bool all = true;
      for (int b = 0; b < kKPBlocks && all; ++b) {
        ExpectedBlock(seed, k, b, want.data());
        ASSERT_TRUE(st.device->Read(b, got.data()).ok());
        all = std::memcmp(got.data(), want.data(), kKPBlockSize) == 0;
      }
      if (all) matched_k = k;
    }
    EXPECT_GE(matched_k, out.max_acked)
        << "recovered state matches no k in [" << out.max_acked << ", "
        << out.max_started << "] — durability or atomicity violated";
  }
  std::remove(base.c_str());
  std::remove((base + ".wal").c_str());
  std::remove((base + ".status").c_str());
}

}  // namespace
}  // namespace vem
