// Tests for external sorting, permuting, and out-of-core matrices.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "io/memory_block_device.h"
#include "sort/distribution_sort.h"
#include "sort/external_sort.h"
#include "sort/loser_tree.h"
#include "sort/matrix.h"
#include "sort/permute.h"
#include "util/random.h"

namespace vem {
namespace {

// ---------------------------------------------------------------- LoserTree

TEST(LoserTree, MergesKSortedSequences) {
  const size_t kK = 5;
  Rng rng(3);
  std::vector<std::vector<int>> seqs(kK);
  std::vector<int> all;
  for (auto& s : seqs) {
    size_t len = rng.Uniform(50);
    for (size_t i = 0; i < len; ++i) s.push_back(static_cast<int>(rng.Uniform(1000)));
    std::sort(s.begin(), s.end());
    all.insert(all.end(), s.begin(), s.end());
  }
  std::sort(all.begin(), all.end());

  LoserTree<int> lt(kK);
  std::vector<size_t> pos(kK, 0);
  for (size_t i = 0; i < kK; ++i) {
    if (!seqs[i].empty()) lt.SetSource(i, seqs[i][pos[i]++]);
  }
  lt.Build();
  std::vector<int> merged;
  while (lt.HasWinner()) {
    merged.push_back(lt.top());
    size_t s = lt.winner();
    if (pos[s] < seqs[s].size()) {
      lt.ReplaceWinner(seqs[s][pos[s]++]);
    } else {
      lt.ExhaustWinner();
    }
  }
  EXPECT_EQ(merged, all);
}

TEST(LoserTree, SingleSource) {
  LoserTree<int> lt(1);
  lt.SetSource(0, 42);
  lt.Build();
  ASSERT_TRUE(lt.HasWinner());
  EXPECT_EQ(lt.top(), 42);
  lt.ExhaustWinner();
  EXPECT_FALSE(lt.HasWinner());
}

TEST(LoserTree, AllSourcesEmpty) {
  LoserTree<int> lt(4);
  lt.Build();
  EXPECT_FALSE(lt.HasWinner());
}

TEST(LoserTree, NonPowerOfTwoSources) {
  for (size_t k : {2, 3, 5, 6, 7, 9, 13}) {
    LoserTree<uint64_t> lt(k);
    for (size_t i = 0; i < k; ++i) lt.SetSource(i, 1000 - i);
    lt.Build();
    std::vector<uint64_t> out;
    while (lt.HasWinner()) {
      out.push_back(lt.top());
      lt.ExhaustWinner();
    }
    ASSERT_EQ(out.size(), k);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end())) << "k=" << k;
  }
}

// ---------------------------------------------------------------- MergeSort

struct SortCase {
  size_t n;
  size_t block_bytes;
  size_t memory_bytes;
};

class MergeSortSweep : public ::testing::TestWithParam<SortCase> {};

TEST_P(MergeSortSweep, SortsRandomInput) {
  const SortCase& c = GetParam();
  MemoryBlockDevice dev(c.block_bytes);
  ExtVector<uint64_t> input(&dev);
  std::vector<uint64_t> ref;
  Rng rng(c.n * 31 + c.block_bytes);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < c.n; ++i) {
      uint64_t v = rng.Uniform(c.n * 2 + 1);  // plenty of duplicates
      ref.push_back(v);
      ASSERT_TRUE(w.Append(v));
    }
    ASSERT_TRUE(w.Finish().ok());
  }
  std::sort(ref.begin(), ref.end());

  ExternalSorter<uint64_t> sorter(&dev, c.memory_bytes);
  ExtVector<uint64_t> output(&dev);
  ASSERT_TRUE(sorter.Sort(input, &output).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(output.ReadAll(&got).ok());
  EXPECT_EQ(got, ref);

  // Metrics sanity: run count = ceil(N / run_length).
  size_t expect_runs =
      (c.n + sorter.run_length() - 1) / std::max<size_t>(1, sorter.run_length());
  EXPECT_EQ(sorter.metrics().initial_runs, expect_runs);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MergeSortSweep,
    ::testing::Values(SortCase{0, 256, 1024}, SortCase{1, 256, 1024},
                      SortCase{100, 256, 1024}, SortCase{5000, 256, 1024},
                      SortCase{50000, 256, 2048},   // many merge passes
                      SortCase{20000, 64, 256},     // brutal: tiny M and B
                      SortCase{10000, 4096, 65536}  // single pass
                      ));

TEST(MergeSort, IoMatchesSortBound) {
  // Measured I/Os must be within a small constant of
  // 2*(N/B)*(passes + 1) (run formation + each merge pass reads+writes).
  const size_t kBlock = 256, kMem = 2048, kN = 100000;
  const size_t kB = kBlock / sizeof(uint64_t);
  MemoryBlockDevice dev(kBlock);
  ExtVector<uint64_t> input(&dev);
  Rng rng(17);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < kN; ++i) ASSERT_TRUE(w.Append(rng.Next()));
    ASSERT_TRUE(w.Finish().ok());
  }
  ExternalSorter<uint64_t> sorter(&dev, kMem);
  ExtVector<uint64_t> output(&dev);
  IoProbe probe(dev);
  ASSERT_TRUE(sorter.Sort(input, &output).ok());
  const auto& m = sorter.metrics();
  double blocks = static_cast<double>(kN) / kB;
  double bound = 2.0 * blocks * (m.merge_passes + 1);
  EXPECT_LE(probe.delta().block_ios(), bound * 1.2 + 16)
      << "passes=" << m.merge_passes;
  // And the pass count matches ceil(log_k(runs)).
  double expect_passes =
      std::ceil(std::log(static_cast<double>(m.initial_runs)) /
                std::log(static_cast<double>(m.fan_in)));
  EXPECT_EQ(m.merge_passes, static_cast<size_t>(expect_passes));
}

TEST(MergeSort, AlreadySortedAndReverse) {
  MemoryBlockDevice dev(256);
  for (bool reverse : {false, true}) {
    ExtVector<uint32_t> input(&dev);
    ExtVector<uint32_t>::Writer w(&input);
    for (uint32_t i = 0; i < 10000; ++i) {
      ASSERT_TRUE(w.Append(reverse ? 10000 - i : i));
    }
    ASSERT_TRUE(w.Finish().ok());
    ExtVector<uint32_t> output(&dev);
    ASSERT_TRUE(ExternalSort(input, &output, 1024).ok());
    std::vector<uint32_t> got;
    ASSERT_TRUE(output.ReadAll(&got).ok());
    ASSERT_EQ(got.size(), 10000u);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

TEST(MergeSort, CustomComparatorDescending) {
  MemoryBlockDevice dev(256);
  ExtVector<int> input(&dev);
  std::vector<int> data{5, -3, 8, 0, 8, -3, 100, 7};
  ASSERT_TRUE(input.AppendAll(data.data(), data.size()).ok());
  ExtVector<int> output(&dev);
  ASSERT_TRUE(ExternalSort(input, &output, 512, std::greater<int>()).ok());
  std::vector<int> got;
  ASSERT_TRUE(output.ReadAll(&got).ok());
  std::sort(data.begin(), data.end(), std::greater<int>());
  EXPECT_EQ(got, data);
}

TEST(MergeSort, TemporariesFreed) {
  MemoryBlockDevice dev(256);
  ExtVector<uint64_t> input(&dev);
  Rng rng(5);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < 20000; ++i) ASSERT_TRUE(w.Append(rng.Next()));
    ASSERT_TRUE(w.Finish().ok());
  }
  uint64_t before = dev.num_allocated();
  {
    ExtVector<uint64_t> output(&dev);
    ASSERT_TRUE(ExternalSort(input, &output, 1024).ok());
    // Only input + output remain allocated.
    EXPECT_EQ(dev.num_allocated(), before + output.num_blocks());
  }
  EXPECT_EQ(dev.num_allocated(), before);
}

// --------------------------------------------------------- DistributionSort

class DistSortSweep : public ::testing::TestWithParam<SortCase> {};

TEST_P(DistSortSweep, SortsRandomInput) {
  const SortCase& c = GetParam();
  MemoryBlockDevice dev(c.block_bytes);
  ExtVector<uint64_t> input(&dev);
  std::vector<uint64_t> ref;
  Rng rng(c.n * 7 + 1);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < c.n; ++i) {
      uint64_t v = rng.Uniform(c.n + 1);
      ref.push_back(v);
      ASSERT_TRUE(w.Append(v));
    }
    ASSERT_TRUE(w.Finish().ok());
  }
  std::sort(ref.begin(), ref.end());
  DistributionSorter<uint64_t> sorter(&dev, c.memory_bytes);
  ExtVector<uint64_t> output(&dev);
  ASSERT_TRUE(sorter.Sort(input, &output).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(output.ReadAll(&got).ok());
  EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DistSortSweep,
    ::testing::Values(SortCase{0, 256, 1024}, SortCase{1, 256, 1024},
                      SortCase{5000, 256, 1024}, SortCase{50000, 256, 2048},
                      SortCase{20000, 64, 512}));

TEST(DistributionSort, AllEqualKeysTerminates) {
  // Regression guard: duplicate-only input must not recurse forever.
  MemoryBlockDevice dev(256);
  ExtVector<uint64_t> input(&dev);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < 20000; ++i) ASSERT_TRUE(w.Append(7));
    ASSERT_TRUE(w.Finish().ok());
  }
  DistributionSorter<uint64_t> sorter(&dev, 1024);
  ExtVector<uint64_t> output(&dev);
  ASSERT_TRUE(sorter.Sort(input, &output).ok());
  EXPECT_EQ(output.size(), 20000u);
  std::vector<uint64_t> got;
  ASSERT_TRUE(output.ReadAll(&got).ok());
  for (uint64_t v : got) ASSERT_EQ(v, 7u);
}

TEST(DistributionSort, ZipfSkewedKeys) {
  MemoryBlockDevice dev(256);
  ExtVector<uint64_t> input(&dev);
  ZipfGenerator zipf(1000, 0.9, 123);
  std::vector<uint64_t> ref;
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < 30000; ++i) {
      uint64_t v = zipf.Next();
      ref.push_back(v);
      ASSERT_TRUE(w.Append(v));
    }
    ASSERT_TRUE(w.Finish().ok());
  }
  std::sort(ref.begin(), ref.end());
  DistributionSorter<uint64_t> sorter(&dev, 2048);
  ExtVector<uint64_t> output(&dev);
  ASSERT_TRUE(sorter.Sort(input, &output).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(output.ReadAll(&got).ok());
  EXPECT_EQ(got, ref);
}

TEST(DistributionSort, AgreesWithMergeSort) {
  MemoryBlockDevice dev(128);
  ExtVector<uint64_t> input(&dev);
  Rng rng(321);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < 40000; ++i) ASSERT_TRUE(w.Append(rng.Next() % 997));
    ASSERT_TRUE(w.Finish().ok());
  }
  ExtVector<uint64_t> a(&dev), b(&dev);
  ASSERT_TRUE(ExternalSort(input, &a, 1024).ok());
  DistributionSorter<uint64_t> ds(&dev, 1024);
  ASSERT_TRUE(ds.Sort(input, &b).ok());
  std::vector<uint64_t> va, vb;
  ASSERT_TRUE(a.ReadAll(&va).ok());
  ASSERT_TRUE(b.ReadAll(&vb).ok());
  EXPECT_EQ(va, vb);
}

// ------------------------------------------------------------------ Permute

TEST(Permute, SortingStrategyReversesAndShuffles) {
  MemoryBlockDevice dev(256);
  const size_t kN = 5000;
  ExtVector<uint64_t> values(&dev);
  ExtVector<uint64_t> dest(&dev);
  std::vector<uint64_t> perm(kN);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(8);
  rng.Shuffle(&perm);
  {
    ExtVector<uint64_t>::Writer vw(&values), dw(&dest);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(vw.Append(i * 10));
      ASSERT_TRUE(dw.Append(perm[i]));
    }
    ASSERT_TRUE(vw.Finish().ok());
    ASSERT_TRUE(dw.Finish().ok());
  }
  ExtVector<uint64_t> out(&dev);
  ASSERT_TRUE(PermuteBySorting(values, dest, &out, 1024).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), kN);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(got[perm[i]], i * 10);
}

TEST(Permute, DirectMatchesSorting) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 8);
  const size_t kN = 3000;
  ExtVector<uint32_t> values(&dev);
  ExtVector<uint64_t> dest(&dev);
  std::vector<uint64_t> perm(kN);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(9);
  rng.Shuffle(&perm);
  {
    ExtVector<uint32_t>::Writer vw(&values);
    ExtVector<uint64_t>::Writer dw(&dest);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(vw.Append(static_cast<uint32_t>(i)));
      ASSERT_TRUE(dw.Append(perm[i]));
    }
    ASSERT_TRUE(vw.Finish().ok());
    ASSERT_TRUE(dw.Finish().ok());
  }
  ExtVector<uint32_t> by_sort(&dev), by_direct(&dev, &pool);
  ASSERT_TRUE(PermuteBySorting(values, dest, &by_sort, 2048).ok());
  ASSERT_TRUE(PermuteDirect(values, dest, &by_direct, 2048).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<uint32_t> a, b;
  ASSERT_TRUE(by_sort.ReadAll(&a).ok());
  ASSERT_TRUE(by_direct.ReadAll(&b).ok());
  EXPECT_EQ(a, b);
}

TEST(Permute, AutoPrefersSortingForLargeRandomPermutation) {
  // With small B the sorting estimate beats N; check the decision.
  auto est = PermuteCostModel::Estimate(/*n=*/1 << 20, sizeof(uint64_t),
                                        /*block=*/4096, /*mem=*/1 << 20);
  EXPECT_LT(est.sorting_ios, est.direct_ios);
}

TEST(Permute, AutoPrefersDirectForTinyBlocks) {
  // The survey's crossover: direct (N I/Os) beats sorting exactly when the
  // block size is below the log term — e.g. ~2 items per block.
  auto est = PermuteCostModel::Estimate(/*n=*/1 << 16, sizeof(uint64_t),
                                        /*block=*/16, /*mem=*/1 << 12);
  EXPECT_LE(est.direct_ios, est.sorting_ios);
}

// ------------------------------------------------------------------- Matrix

TEST(Matrix, TiledTransposeCorrect) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 64);
  const size_t kR = 37, kC = 53;
  ExtMatrix a(&dev, kR, kC);
  std::vector<double> data(kR * kC);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  ASSERT_TRUE(a.Load(data.data()).ok());
  ExtMatrix at(&dev, kC, kR, &pool);
  ASSERT_TRUE(TransposeTiled(a, &at, 4096).ok());
  std::vector<double> got;
  ASSERT_TRUE(at.data().ReadAll(&got).ok());
  for (size_t r = 0; r < kR; ++r) {
    for (size_t c = 0; c < kC; ++c) {
      ASSERT_EQ(got[c * kR + r], data[r * kC + c]) << r << "," << c;
    }
  }
}

TEST(Matrix, TiledMatchesNaive) {
  MemoryBlockDevice dev(128);
  BufferPool pool(&dev, 128);
  const size_t kR = 24, kC = 31;
  ExtMatrix a(&dev, kR, kC, &pool);
  std::vector<double> data(kR * kC);
  Rng rng(13);
  for (auto& v : data) v = rng.NextDouble();
  ASSERT_TRUE(a.Load(data.data()).ok());
  ExtMatrix t1(&dev, kC, kR, &pool), t2(&dev, kC, kR, &pool);
  ASSERT_TRUE(TransposeTiled(a, &t1, 2048).ok());
  ASSERT_TRUE(TransposeNaive(a, &t2).ok());
  std::vector<double> v1, v2;
  ASSERT_TRUE(t1.data().ReadAll(&v1).ok());
  ASSERT_TRUE(t2.data().ReadAll(&v2).ok());
  EXPECT_EQ(v1, v2);
}

TEST(Matrix, MultiplyMatchesReference) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 64);
  const size_t kN = 20, kK = 15, kM = 17;
  std::vector<double> da(kN * kK), db(kK * kM);
  Rng rng(77);
  for (auto& v : da) v = std::floor(rng.NextDouble() * 10);
  for (auto& v : db) v = std::floor(rng.NextDouble() * 10);
  ExtMatrix a(&dev, kN, kK), b(&dev, kK, kM), c(&dev, kN, kM, &pool);
  ASSERT_TRUE(a.Load(da.data()).ok());
  ASSERT_TRUE(b.Load(db.data()).ok());
  ASSERT_TRUE(MultiplyTiled(a, b, &c, 2048).ok());
  std::vector<double> got;
  ASSERT_TRUE(c.data().ReadAll(&got).ok());
  for (size_t i = 0; i < kN; ++i) {
    for (size_t j = 0; j < kM; ++j) {
      double expect = 0;
      for (size_t k = 0; k < kK; ++k) expect += da[i * kK + k] * db[k * kM + j];
      ASSERT_DOUBLE_EQ(got[i * kM + j], expect);
    }
  }
}

TEST(Matrix, TiledTransposeBeatsNaiveOnIos) {
  // The headline shape: tiled transpose ~ Scan I/Os, naive ~ item I/Os.
  MemoryBlockDevice dev(512);
  BufferPool pool(&dev, 8);  // small pool => naive thrashes
  const size_t kR = 128, kC = 128;
  ExtMatrix a(&dev, kR, kC, &pool);
  std::vector<double> data(kR * kC, 1.5);
  ASSERT_TRUE(a.Load(data.data()).ok());

  ExtMatrix t1(&dev, kC, kR, &pool);
  IoProbe p1(dev);
  ASSERT_TRUE(TransposeTiled(a, &t1, 4096).ok());
  uint64_t tiled_ios = p1.delta().block_ios();

  ExtMatrix t2(&dev, kC, kR, &pool);
  IoProbe p2(dev);
  ASSERT_TRUE(TransposeNaive(a, &t2).ok());
  uint64_t naive_ios = p2.delta().block_ios();

  EXPECT_LT(tiled_ios * 4, naive_ios)
      << "tiled=" << tiled_ios << " naive=" << naive_ios;
}

}  // namespace
}  // namespace vem
