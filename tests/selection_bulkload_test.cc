// Tests for external selection, replacement-selection run formation, and
// B+-tree bulk loading.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "io/memory_block_device.h"
#include "search/bplus_tree.h"
#include "sort/external_sort.h"
#include "sort/selection.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr size_t kMem = 2048;

// ---------------------------------------------------------------- selection

class SelectionSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SelectionSweep, FindsEveryPercentile) {
  const size_t n = GetParam();
  MemoryBlockDevice dev(kBlock);
  Rng rng(n * 3 + 1);
  std::vector<uint64_t> data(n);
  for (auto& v : data) v = rng.Uniform(n);  // duplicates galore
  ExtVector<uint64_t> vec(&dev);
  ASSERT_TRUE(vec.AppendAll(data.data(), data.size()).ok());
  std::vector<uint64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());

  ExternalSelector<uint64_t> sel(&dev, kMem);
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99}) {
    uint64_t k = static_cast<uint64_t>(q * (n - 1));
    uint64_t got;
    ASSERT_TRUE(sel.Select(vec, k, &got).ok());
    ASSERT_EQ(got, sorted[k]) << "n=" << n << " k=" << k;
  }
  uint64_t got;
  ASSERT_TRUE(sel.Select(vec, n - 1, &got).ok());
  EXPECT_EQ(got, sorted[n - 1]);
  EXPECT_TRUE(sel.Select(vec, n, &got).IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectionSweep,
                         ::testing::Values(1, 50, 5000, 60000));

TEST(Selection, CheaperThanSorting) {
  const size_t n = 100000;
  MemoryBlockDevice dev(kBlock);
  Rng rng(12);
  ExtVector<uint64_t> vec(&dev);
  {
    ExtVector<uint64_t>::Writer w(&vec);
    for (size_t i = 0; i < n; ++i) ASSERT_TRUE(w.Append(rng.Next()));
    ASSERT_TRUE(w.Finish().ok());
  }
  uint64_t median;
  IoProbe p1(dev);
  ASSERT_TRUE(ExternalMedian(vec, &median, kMem).ok());
  uint64_t select_ios = p1.delta().block_ios();

  ExtVector<uint64_t> sorted(&dev);
  IoProbe p2(dev);
  ASSERT_TRUE(ExternalSort(vec, &sorted, kMem).ok());
  uint64_t sort_ios = p2.delta().block_ios();
  EXPECT_LT(select_ios, sort_ios)
      << "select=" << select_ios << " sort=" << sort_ios;
  // Geometric shrinkage: a handful of partition rounds.
  ExternalSelector<uint64_t> sel(&dev, kMem);
  uint64_t v;
  ASSERT_TRUE(sel.Select(vec, n / 2, &v).ok());
  EXPECT_LE(sel.rounds(), 30u);
}

TEST(Selection, AllEqualInput) {
  MemoryBlockDevice dev(kBlock);
  ExtVector<uint64_t> vec(&dev);
  {
    ExtVector<uint64_t>::Writer w(&vec);
    for (int i = 0; i < 10000; ++i) ASSERT_TRUE(w.Append(42));
    ASSERT_TRUE(w.Finish().ok());
  }
  ExternalSelector<uint64_t> sel(&dev, kMem);
  uint64_t got;
  ASSERT_TRUE(sel.Select(vec, 5000, &got).ok());
  EXPECT_EQ(got, 42u);
}

// ----------------------------------------------- replacement selection runs

TEST(ReplacementSelection, RunsAreLongerOnRandomInput) {
  const size_t n = 100000;
  MemoryBlockDevice dev(kBlock);
  ExtVector<uint64_t> input(&dev);
  Rng rng(13);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < n; ++i) ASSERT_TRUE(w.Append(rng.Next()));
    ASSERT_TRUE(w.Finish().ok());
  }
  ExternalSorter<uint64_t> plain(&dev, kMem);
  ExternalSorter<uint64_t> snow(&dev, kMem);
  snow.set_replacement_selection(true);
  ExtVector<uint64_t> out1(&dev), out2(&dev);
  ASSERT_TRUE(plain.Sort(input, &out1).ok());
  ASSERT_TRUE(snow.Sort(input, &out2).ok());
  // Expected ~2x longer runs => ~half the run count.
  EXPECT_LT(snow.metrics().initial_runs,
            plain.metrics().initial_runs * 2 / 3)
      << "plain=" << plain.metrics().initial_runs
      << " snow=" << snow.metrics().initial_runs;
  // Identical output.
  std::vector<uint64_t> a, b;
  ASSERT_TRUE(out1.ReadAll(&a).ok());
  ASSERT_TRUE(out2.ReadAll(&b).ok());
  EXPECT_EQ(a, b);
}

TEST(ReplacementSelection, NearlySortedInputGivesOneRun) {
  // The snow-plow effect peaks on presorted data: a single run.
  const size_t n = 50000;
  MemoryBlockDevice dev(kBlock);
  ExtVector<uint64_t> input(&dev);
  Rng rng(14);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(w.Append(i * 10 + rng.Uniform(10)));  // local jitter
    }
    ASSERT_TRUE(w.Finish().ok());
  }
  ExternalSorter<uint64_t> snow(&dev, kMem);
  snow.set_replacement_selection(true);
  ExtVector<uint64_t> out(&dev);
  ASSERT_TRUE(snow.Sort(input, &out).ok());
  EXPECT_EQ(snow.metrics().initial_runs, 1u);
  std::vector<uint64_t> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), n);
}

TEST(ReplacementSelection, ReverseSortedWorstCase) {
  // Descending input defeats replacement selection: runs of length M.
  const size_t n = 20000;
  MemoryBlockDevice dev(kBlock);
  ExtVector<uint64_t> input(&dev);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < n; ++i) ASSERT_TRUE(w.Append(n - i));
    ASSERT_TRUE(w.Finish().ok());
  }
  ExternalSorter<uint64_t> snow(&dev, kMem);
  snow.set_replacement_selection(true);
  ExtVector<uint64_t> out(&dev);
  ASSERT_TRUE(snow.Sort(input, &out).ok());
  size_t m_items = kMem / sizeof(uint64_t);
  EXPECT_GE(snow.metrics().initial_runs, n / m_items);
  std::vector<uint64_t> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

// -------------------------------------------------------------- bulk load

TEST(BulkLoad, BuildsSearchableTree) {
  MemoryBlockDevice dev(512);
  BufferPool pool(&dev, 16);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  const size_t n = 50000;
  using KV = BPlusTree<uint64_t, uint64_t>::KV;
  ExtVector<KV> input(&dev);
  {
    ExtVector<KV>::Writer w(&input);
    for (uint64_t i = 0; i < n; ++i) ASSERT_TRUE(w.Append(KV{i * 3, i}));
    ASSERT_TRUE(w.Finish().ok());
  }
  IoProbe probe(dev);
  ASSERT_TRUE(tree.BulkLoad(input).ok());
  // Build cost is ~N/B_leaf writes, far below N inserts.
  EXPECT_LT(probe.delta().block_ios(), n / 4);
  EXPECT_EQ(tree.size(), n);
  uint64_t v;
  for (uint64_t i : {0ull, 1ull, 2998ull, 149997ull}) {
    Status s = tree.Get(i, &v);
    if (i % 3 == 0 && i / 3 < n) {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ(v, i / 3);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << i;
    }
  }
  // Scan order intact.
  uint64_t prev = 0;
  size_t count = 0;
  ASSERT_TRUE(tree.Scan(0, ~0ull, [&](const uint64_t& k, const uint64_t&) {
    EXPECT_TRUE(count == 0 || k > prev);
    prev = k;
    count++;
    return true;
  }).ok());
  EXPECT_EQ(count, n);
}

TEST(BulkLoad, TreeRemainsFullyMutable) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 16);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  using KV = BPlusTree<uint64_t, uint64_t>::KV;
  ExtVector<KV> input(&dev);
  std::map<uint64_t, uint64_t> ref;
  {
    ExtVector<KV>::Writer w(&input);
    for (uint64_t i = 0; i < 5000; ++i) {
      ASSERT_TRUE(w.Append(KV{i * 2, i}));
      ref[i * 2] = i;
    }
    ASSERT_TRUE(w.Finish().ok());
  }
  ASSERT_TRUE(tree.BulkLoad(input).ok());
  // Hammer it with mixed mutations against the reference.
  Rng rng(15);
  for (int t = 0; t < 20000; ++t) {
    uint64_t k = rng.Uniform(12000);
    switch (rng.Uniform(3)) {
      case 0: {
        uint64_t v = rng.Next();
        ASSERT_TRUE(tree.Insert(k, v).ok());
        ref[k] = v;
        break;
      }
      case 1: {
        bool erased;
        ASSERT_TRUE(tree.Delete(k, &erased).ok());
        EXPECT_EQ(erased, ref.erase(k) > 0) << "op " << t;
        break;
      }
      case 2: {
        uint64_t v;
        Status s = tree.Get(k, &v);
        auto it = ref.find(k);
        if (it == ref.end()) {
          EXPECT_TRUE(s.IsNotFound());
        } else {
          ASSERT_TRUE(s.ok());
          EXPECT_EQ(v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(tree.size(), ref.size());
  }
}

TEST(BulkLoad, TinyInputs) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 8);
  using KV = BPlusTree<uint64_t, uint64_t>::KV;
  for (size_t n : {0u, 1u, 2u, 7u, 33u}) {
    BPlusTree<uint64_t, uint64_t> tree(&pool);
    ASSERT_TRUE(tree.Init().ok());
    ExtVector<KV> input(&dev);
    {
      ExtVector<KV>::Writer w(&input);
      for (uint64_t i = 0; i < n; ++i) ASSERT_TRUE(w.Append(KV{i, i + 100}));
      ASSERT_TRUE(w.Finish().ok());
    }
    ASSERT_TRUE(tree.BulkLoad(input).ok());
    EXPECT_EQ(tree.size(), n);
    uint64_t v;
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(tree.Get(i, &v).ok()) << "n=" << n << " i=" << i;
      EXPECT_EQ(v, i + 100);
    }
  }
}

}  // namespace
}  // namespace vem
