// Robustness & integration tests: failure injection across modules,
// Reader::Seek, algorithms on striped devices, time-forward processing,
// rectangle counting.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "core/ext_vector.h"
#include "geometry/range_counting.h"
#include "graph/time_forward.h"
#include "io/faulty_device.h"
#include "io/memory_block_device.h"
#include "io/striped_device.h"
#include "search/bplus_tree.h"
#include "search/buffer_tree.h"
#include "sort/external_sort.h"
#include "util/random.h"

namespace vem {
namespace {

// ------------------------------------------------------------ fault injection

// Sweep the fault position over the whole I/O schedule of an external
// sort: every injected fault must surface as a non-OK Status, never a
// crash or a silently wrong result.
TEST(FaultInjection, ExternalSortPropagatesEveryReadFault) {
  // First, count the fault-free I/O schedule.
  uint64_t total_reads;
  {
    MemoryBlockDevice inner(256);
    FaultyBlockDevice dev(&inner);
    ExtVector<uint64_t> input(&dev);
    Rng rng(1);
    ExtVector<uint64_t>::Writer w(&input);
    for (int i = 0; i < 3000; ++i) ASSERT_TRUE(w.Append(rng.Next()));
    ASSERT_TRUE(w.Finish().ok());
    ExtVector<uint64_t> out(&dev);
    ASSERT_TRUE(ExternalSort(input, &out, 1024).ok());
    total_reads = dev.reads_seen();
  }
  ASSERT_GT(total_reads, 50u);
  // Inject at a spread of positions.
  // Loading the input performs no reads (write-only), so every read
  // position in [1, total_reads] lands inside the sort itself.
  for (uint64_t pos : {uint64_t{1}, total_reads / 4, total_reads / 2,
                       total_reads}) {
    MemoryBlockDevice inner(256);
    FaultyBlockDevice dev(&inner, /*fail_read_at=*/pos);
    ExtVector<uint64_t> input(&dev);
    Rng rng(1);
    ExtVector<uint64_t>::Writer w(&input);
    for (int i = 0; i < 3000; ++i) ASSERT_TRUE(w.Append(rng.Next()));
    ASSERT_TRUE(w.Finish().ok());
    ExtVector<uint64_t> out(&dev);
    Status s = ExternalSort(input, &out, 1024);
    // Loading consumed no reads, so the fault hits during the sort.
    EXPECT_TRUE(s.IsIOError()) << "pos=" << pos << " got " << s.ToString();
  }
}

TEST(FaultInjection, ExternalSortPropagatesWriteFaults) {
  for (uint64_t pos : {uint64_t{1}, uint64_t{40}, uint64_t{77}}) {
    MemoryBlockDevice inner(256);
    FaultyBlockDevice dev(&inner, FaultyBlockDevice::kNever, pos);
    ExtVector<uint64_t> input(&dev);
    Rng rng(2);
    ExtVector<uint64_t>::Writer w(&input);
    bool load_failed = false;
    for (int i = 0; i < 3000; ++i) {
      if (!w.Append(rng.Next())) {
        load_failed = true;
        break;
      }
    }
    Status load = w.Finish();
    if (load_failed || !load.ok()) {
      EXPECT_TRUE(load.IsIOError());
      continue;  // fault hit during load: also correctly reported
    }
    ExtVector<uint64_t> out(&dev);
    Status s = ExternalSort(input, &out, 1024);
    EXPECT_TRUE(s.IsIOError()) << "pos=" << pos;
  }
}

TEST(FaultInjection, BPlusTreeSurfacesPinFaults) {
  MemoryBlockDevice inner(256);
  FaultyBlockDevice dev(&inner, /*fail_read_at=*/50);
  BufferPool pool(&dev, 4);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  Status first_error;
  for (uint64_t i = 0; i < 5000; ++i) {
    Status s = tree.Insert(i * 7919 % 5000, i);
    if (!s.ok()) {
      first_error = s;
      break;
    }
  }
  EXPECT_TRUE(first_error.IsIOError());
}

TEST(FaultInjection, BufferTreeSurfacesFlushFaults) {
  MemoryBlockDevice inner(256);
  FaultyBlockDevice dev(&inner, /*fail_read_at=*/30);
  BufferTree<uint64_t, uint64_t> tree(&dev, 2048);
  Status first_error;
  for (uint64_t i = 0; i < 50000 && first_error.ok(); ++i) {
    first_error = tree.Insert(i, i);
  }
  if (first_error.ok()) first_error = tree.FlushAll();
  EXPECT_TRUE(first_error.IsIOError());
}

// ------------------------------------------------------------- Reader::Seek

TEST(ReaderSeek, ForwardBackwardAndWithinBlock) {
  MemoryBlockDevice dev(64);  // 8 u64 per block
  ExtVector<uint64_t> v(&dev);
  std::vector<uint64_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(v.AppendAll(data.data(), data.size()).ok());

  ExtVector<uint64_t>::Reader r(&v);
  uint64_t x;
  ASSERT_TRUE(r.Next(&x));
  EXPECT_EQ(x, 0u);
  r.Seek(50);
  ASSERT_TRUE(r.Next(&x));
  EXPECT_EQ(x, 50u);
  r.Seek(3);  // backward
  ASSERT_TRUE(r.Next(&x));
  EXPECT_EQ(x, 3u);
  // Seek within the same block must not re-read.
  IoProbe probe(dev);
  r.Seek(1);
  ASSERT_TRUE(r.Next(&x));
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(probe.delta().block_reads, 0u);
  r.Seek(1000);  // past the end
  EXPECT_FALSE(r.Next(&x));
  EXPECT_TRUE(r.status().ok());
}

TEST(ReaderSeek, SparseForwardScanReadsOnlyTouchedBlocks) {
  MemoryBlockDevice dev(64);
  const size_t kB = 8, kN = 800;
  ExtVector<uint64_t> v(&dev);
  std::vector<uint64_t> data(kN, 7);
  ASSERT_TRUE(v.AppendAll(data.data(), data.size()).ok());
  ExtVector<uint64_t>::Reader r(&v);
  IoProbe probe(dev);
  uint64_t x;
  for (size_t i = 0; i < kN; i += 10 * kB) {  // every 10th block
    r.Seek(i);
    ASSERT_TRUE(r.Next(&x));
  }
  EXPECT_EQ(probe.delta().block_reads, kN / (10 * kB));
}

// ------------------------------------------ algorithms on a striped device

TEST(StripedIntegration, SortAndBTreeOnStripedDevice) {
  StripedDevice dev(4, 128);  // logical block 512 bytes over 4 disks
  ExtVector<uint64_t> input(&dev);
  Rng rng(3);
  std::vector<uint64_t> ref;
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (int i = 0; i < 20000; ++i) {
      uint64_t v = rng.Next();
      ref.push_back(v);
      ASSERT_TRUE(w.Append(v));
    }
    ASSERT_TRUE(w.Finish().ok());
  }
  std::sort(ref.begin(), ref.end());
  ExtVector<uint64_t> out(&dev);
  ASSERT_TRUE(ExternalSort(input, &out, 4096).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  EXPECT_EQ(got, ref);
  // Parallel I/O steps must be 1/4 of physical transfers.
  EXPECT_EQ(dev.stats().block_ios(), 4 * dev.stats().parallel_ios());

  BufferPool pool(&dev, 8);
  BPlusTree<uint64_t, uint32_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  uint32_t val;
  ASSERT_TRUE(tree.Get(567, &val).ok());
  EXPECT_EQ(val, 567u);
}

// -------------------------------------------------- time-forward processing

TEST(TimeForward, DagLongestPath) {
  MemoryBlockDevice dev(256);
  // Random DAG on 5000 vertices, edges (u, v) with u < v.
  const uint64_t n = 5000;
  Rng rng(4);
  std::vector<Edge> e;
  for (uint64_t v = 1; v < n; ++v) {
    size_t indeg = 1 + rng.Uniform(3);
    for (size_t i = 0; i < indeg; ++i) e.push_back({rng.Uniform(v), v});
  }
  // Reference longest path (in-memory DP).
  std::vector<uint64_t> ref(n, 0);
  {
    std::vector<std::vector<uint64_t>> in(n);
    for (const Edge& ed : e) in[ed.v].push_back(ed.u);
    for (uint64_t v = 0; v < n; ++v) {
      for (uint64_t u : in[v]) ref[v] = std::max(ref[v], ref[u] + 1);
    }
  }
  ExtVector<Edge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  TimeForwardProcessor<uint64_t> tfp(&dev, 2048);
  ExtVector<TimeForwardProcessor<uint64_t>::VertexValue> out(&dev);
  ASSERT_TRUE(tfp.Run(edges, n,
                      [](uint64_t, const std::vector<uint64_t>& in) {
                        uint64_t best = 0;
                        for (uint64_t x : in) best = std::max(best, x + 1);
                        return best;
                      },
                      &out)
                  .ok());
  std::vector<TimeForwardProcessor<uint64_t>::VertexValue> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), n);
  for (uint64_t v = 0; v < n; ++v) {
    ASSERT_EQ(got[v].v, v);
    ASSERT_EQ(got[v].value, ref[v]) << "vertex " << v;
  }
}

TEST(TimeForward, CircuitEvaluation) {
  MemoryBlockDevice dev(256);
  // A chain of alternating NAND gates fed by constants:
  //   v0 = 1, v1 = 0, v_k = NAND(v_{k-2}, v_{k-1}).
  const uint64_t n = 1000;
  std::vector<Edge> e;
  for (uint64_t v = 2; v < n; ++v) {
    e.push_back({v - 2, v});
    e.push_back({v - 1, v});
  }
  std::vector<uint8_t> ref(n);
  ref[0] = 1;
  ref[1] = 0;
  for (uint64_t v = 2; v < n; ++v) ref[v] = !(ref[v - 2] && ref[v - 1]);
  ExtVector<Edge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  TimeForwardProcessor<uint8_t> tfp(&dev, 1024);
  ExtVector<TimeForwardProcessor<uint8_t>::VertexValue> out(&dev);
  ASSERT_TRUE(tfp.Run(edges, n,
                      [](uint64_t v, const std::vector<uint8_t>& in) {
                        if (v == 0) return uint8_t{1};
                        if (v == 1) return uint8_t{0};
                        uint8_t acc = 1;
                        for (uint8_t x : in) acc = acc && x;
                        return static_cast<uint8_t>(!acc);
                      },
                      &out)
                  .ok());
  std::vector<TimeForwardProcessor<uint8_t>::VertexValue> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  for (uint64_t v = 0; v < n; ++v) ASSERT_EQ(got[v].value, ref[v]) << v;
}

TEST(TimeForward, RejectsNonTopologicalEdges) {
  MemoryBlockDevice dev(256);
  ExtVector<Edge> edges(&dev);
  std::vector<Edge> e = {{0, 1}, {2, 1}};  // 2 -> 1 goes backward
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  TimeForwardProcessor<uint64_t> tfp(&dev, 1024);
  ExtVector<TimeForwardProcessor<uint64_t>::VertexValue> out(&dev);
  Status s = tfp.Run(edges, 3,
                     [](uint64_t, const std::vector<uint64_t>&) {
                       return uint64_t{0};
                     },
                     &out);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// ------------------------------------------------------- rectangle counting

TEST(RectangleCount, MatchesBruteForce) {
  MemoryBlockDevice dev(256);
  Rng rng(5);
  std::vector<Point2> ps;
  std::vector<RectQuery> qs;
  for (size_t i = 0; i < 4000; ++i) {
    ps.push_back({rng.NextDouble() * 100, rng.NextDouble() * 100});
  }
  for (size_t i = 0; i < 500; ++i) {
    double x1 = rng.NextDouble() * 90, y1 = rng.NextDouble() * 90;
    qs.push_back({x1, x1 + rng.NextDouble() * 10, y1,
                  y1 + rng.NextDouble() * 10, i});
  }
  ExtVector<Point2> pv(&dev);
  ExtVector<RectQuery> qv(&dev);
  ASSERT_TRUE(pv.AppendAll(ps.data(), ps.size()).ok());
  ASSERT_TRUE(qv.AppendAll(qs.data(), qs.size()).ok());
  ExtVector<RectCount> out(&dev);
  ASSERT_TRUE(BatchedRectangleCount(pv, qv, &out, 4096).ok());
  std::vector<RectCount> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), qs.size());
  std::map<uint64_t, uint64_t> by_id;
  for (auto& rc : got) by_id[rc.id] = rc.count;
  for (const auto& q : qs) {
    uint64_t expect = 0;
    for (const auto& p : ps) {
      if (q.x1 <= p.x && p.x <= q.x2 && q.y1 <= p.y && p.y <= q.y2) expect++;
    }
    ASSERT_EQ(by_id[q.id], expect) << "rect " << q.id;
  }
}

TEST(RectangleCount, BoundaryPointsInclusive) {
  MemoryBlockDevice dev(256);
  std::vector<Point2> ps = {{1, 1}, {1, 5}, {5, 1}, {5, 5}, {3, 3}};
  std::vector<RectQuery> qs = {{1, 5, 1, 5, 0},   // all corners + center
                               {1, 1, 1, 1, 1},   // degenerate point rect
                               {2, 4, 2, 4, 2}};  // center only
  ExtVector<Point2> pv(&dev);
  ExtVector<RectQuery> qv(&dev);
  ASSERT_TRUE(pv.AppendAll(ps.data(), ps.size()).ok());
  ASSERT_TRUE(qv.AppendAll(qs.data(), qs.size()).ok());
  ExtVector<RectCount> out(&dev);
  ASSERT_TRUE(BatchedRectangleCount(pv, qv, &out, 4096).ok());
  std::vector<RectCount> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  std::map<uint64_t, uint64_t> by_id;
  for (auto& rc : got) by_id[rc.id] = rc.count;
  EXPECT_EQ(by_id[0], 5u);
  EXPECT_EQ(by_id[1], 1u);
  EXPECT_EQ(by_id[2], 1u);
}

}  // namespace
}  // namespace vem
