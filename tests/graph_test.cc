// Tests for external graph algorithms: list ranking, Euler tour,
// connected components, BFS.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <queue>
#include <set>
#include <vector>

#include "graph/bfs.h"
#include "graph/connected_components.h"
#include "graph/euler_tour.h"
#include "graph/graph.h"
#include "graph/list_ranking.h"
#include "io/memory_block_device.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr size_t kMem = 2048;

// Build a random-order list over ids 0..n-1 whose logical order is a
// random permutation. Returns (nodes appended in id order, head id,
// expected rank per id).
struct ListFixture {
  std::vector<ListNode> nodes;
  uint64_t head;
  std::vector<uint64_t> expected_rank;  // by id
};

ListFixture MakeRandomList(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  ListFixture f;
  f.nodes.resize(n);
  f.expected_rank.resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t id = order[i];
    uint64_t succ = (i + 1 < n) ? order[i + 1] : kNoVertex;
    f.nodes[id] = ListNode{id, succ, 1};
    f.expected_rank[id] = n - i;  // distance to end, inclusive
  }
  f.head = order[0];
  return f;
}

// ------------------------------------------------------------- ListRanking

class ListRankingSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ListRankingSweep, RanksRandomList) {
  const size_t n = GetParam();
  MemoryBlockDevice dev(kBlock);
  ListFixture f = MakeRandomList(n, n * 17 + 5);
  ExtVector<ListNode> nodes(&dev);
  ASSERT_TRUE(nodes.AppendAll(f.nodes.data(), f.nodes.size()).ok());
  ListRanker ranker(&dev, kMem);
  ExtVector<ListRank> ranks(&dev);
  ASSERT_TRUE(ranker.Rank(nodes, &ranks).ok());
  std::vector<ListRank> got;
  ASSERT_TRUE(ranks.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i].id, i);
    ASSERT_EQ(got[i].rank, f.expected_rank[i]) << "id " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ListRankingSweep,
                         ::testing::Values(1, 2, 10, 100, 5000, 20000));

TEST(ListRanking, WeightedList) {
  MemoryBlockDevice dev(kBlock);
  // 3 -> 1 -> 4 -> 0 (weights 5, 2, 7, 3).
  std::vector<ListNode> nodes = {
      {0, kNoVertex, 3}, {1, 4, 2}, {3, 1, 5}, {4, 0, 7}};
  ExtVector<ListNode> vec(&dev);
  ASSERT_TRUE(vec.AppendAll(nodes.data(), nodes.size()).ok());
  ListRanker ranker(&dev, kMem);
  ExtVector<ListRank> ranks(&dev);
  ASSERT_TRUE(ranker.Rank(vec, &ranks).ok());
  std::vector<ListRank> got;
  ASSERT_TRUE(ranks.ReadAll(&got).ok());
  std::map<uint64_t, uint64_t> m;
  for (auto& r : got) m[r.id] = r.rank;
  EXPECT_EQ(m[0], 3u);
  EXPECT_EQ(m[4], 10u);
  EXPECT_EQ(m[1], 12u);
  EXPECT_EQ(m[3], 17u);
}

TEST(ListRanking, MultipleDisjointLists) {
  MemoryBlockDevice dev(kBlock);
  // Two lists: 0->1->2 and 10->11.
  std::vector<ListNode> nodes = {{0, 1, 1}, {1, 2, 1}, {2, kNoVertex, 1},
                                 {10, 11, 1}, {11, kNoVertex, 1}};
  ExtVector<ListNode> vec(&dev);
  ASSERT_TRUE(vec.AppendAll(nodes.data(), nodes.size()).ok());
  ListRanker ranker(&dev, kMem);
  ExtVector<ListRank> ranks(&dev);
  ASSERT_TRUE(ranker.Rank(vec, &ranks).ok());
  std::vector<ListRank> got;
  ASSERT_TRUE(ranks.ReadAll(&got).ok());
  std::map<uint64_t, uint64_t> m;
  for (auto& r : got) m[r.id] = r.rank;
  EXPECT_EQ(m[0], 3u);
  EXPECT_EQ(m[1], 2u);
  EXPECT_EQ(m[2], 1u);
  EXPECT_EQ(m[10], 2u);
  EXPECT_EQ(m[11], 1u);
}

TEST(ListRanking, SortBasedBeatsPointerChasingOnIos) {
  // The survey's motivating example: ranking a scattered list by pointer
  // chasing costs ~1 I/O per element; the sort-based algorithm is ~Sort(N).
  // Realistic PDM parameters matter here: with large B, Sort(N) << N.
  const size_t n = 30000;
  const size_t kBigBlock = 4096, kBigMem = 64 * 1024;
  MemoryBlockDevice dev(kBigBlock);
  BufferPool pool(&dev, kBigMem / kBigBlock);
  ListFixture f = MakeRandomList(n, 99);
  ExtVector<ListNode> pooled(&dev, &pool);
  ASSERT_TRUE(pooled.AppendAll(f.nodes.data(), f.nodes.size()).ok());

  IoProbe p1(dev);
  ListRanker ranker(&dev, kBigMem);
  ExtVector<ListRank> ranks(&dev);
  ASSERT_TRUE(ranker.Rank(pooled, &ranks).ok());
  uint64_t sort_based = p1.delta().block_ios();

  IoProbe p2(dev);
  ExtVector<ListRank> ranks2(&dev);
  ASSERT_TRUE(ListRankByPointerChasing(pooled, f.head, &ranks2).ok());
  uint64_t chasing = p2.delta().block_ios();

  EXPECT_LT(sort_based * 2, chasing)
      << "sort=" << sort_based << " chase=" << chasing;
  // Same answers.
  std::vector<ListRank> a, braw;
  ASSERT_TRUE(ranks.ReadAll(&a).ok());
  ASSERT_TRUE(ranks2.ReadAll(&braw).ok());
  std::map<uint64_t, uint64_t> b;
  for (auto& r : braw) b[r.id] = r.rank;
  for (auto& r : a) ASSERT_EQ(r.rank, b[r.id]);
}

// ---------------------------------------------------------------- ExtGraph

TEST(ExtGraph, BuildsCsrFromEdges) {
  MemoryBlockDevice dev(kBlock);
  BufferPool pool(&dev, 8);
  ExtVector<Edge> edges(&dev);
  std::vector<Edge> e = {{0, 1}, {0, 2}, {1, 2}, {3, 0}};
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  ExtGraph g(&dev, &pool);
  ASSERT_TRUE(g.Build(edges, 5, kMem, /*symmetrize=*/true).ok());
  EXPECT_EQ(g.num_arcs(), 8u);
  std::vector<uint64_t> adj;
  ASSERT_TRUE(g.Neighbors(0, &adj).ok());
  EXPECT_EQ(adj, (std::vector<uint64_t>{1, 2, 3}));
  adj.clear();
  ASSERT_TRUE(g.Neighbors(4, &adj).ok());  // isolated vertex
  EXPECT_TRUE(adj.empty());
}

// -------------------------------------------------------------- EulerTour

TEST(EulerTour, SmallTreeTourAndPreorder) {
  MemoryBlockDevice dev(kBlock);
  //      0
  //     / .
  //    1   2
  //   / .
  //  3   4      (. = right-child edge)
  ExtVector<Edge> tree(&dev);
  std::vector<Edge> e = {{0, 1}, {0, 2}, {1, 3}, {1, 4}};
  ASSERT_TRUE(tree.AppendAll(e.data(), e.size()).ok());
  EulerTour et(&dev, kMem);
  ExtVector<TourArc> arcs(&dev);
  ExtVector<Preorder> pre(&dev);
  ASSERT_TRUE(et.Run(tree, 5, /*root=*/0, &arcs, &pre).ok());

  std::vector<TourArc> got;
  ASSERT_TRUE(arcs.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), 8u);
  // Positions are a permutation of 0..7 and consecutive arcs chain.
  std::vector<const TourArc*> by_pos(8, nullptr);
  for (auto& a : got) {
    ASSERT_LT(a.pos, 8u);
    ASSERT_EQ(by_pos[a.pos], nullptr);
    by_pos[a.pos] = &a;
  }
  EXPECT_EQ(by_pos[0]->u, 0u);  // starts at root
  for (int i = 0; i + 1 < 8; ++i) {
    EXPECT_EQ(by_pos[i]->v, by_pos[i + 1]->u) << "break at " << i;
  }
  EXPECT_EQ(by_pos[7]->v, 0u);  // ends back at root

  // Preorder: neighbor order is sorted, so DFS visits 0,1,3,4,2.
  std::vector<Preorder> pg;
  ASSERT_TRUE(pre.ReadAll(&pg).ok());
  ASSERT_EQ(pg.size(), 5u);
  std::map<uint64_t, uint64_t> pm;
  for (auto& p : pg) pm[p.vertex] = p.pre;
  EXPECT_EQ(pm[0], 0u);
  EXPECT_EQ(pm[1], 1u);
  EXPECT_EQ(pm[3], 2u);
  EXPECT_EQ(pm[4], 3u);
  EXPECT_EQ(pm[2], 4u);
}

TEST(EulerTour, RandomTreeMatchesInMemoryDfs) {
  const size_t n = 2000;
  MemoryBlockDevice dev(kBlock);
  Rng rng(7);
  // Random tree: parent(v) uniform in [0, v).
  std::vector<Edge> e;
  std::vector<std::vector<uint64_t>> adj(n);
  for (uint64_t v = 1; v < n; ++v) {
    uint64_t p = rng.Uniform(v);
    e.push_back({p, v});
    adj[p].push_back(v);
    adj[v].push_back(p);
  }
  for (auto& a : adj) std::sort(a.begin(), a.end());
  // In-memory DFS with sorted neighbor order (skipping the parent).
  std::vector<uint64_t> pre(n, 0);
  {
    uint64_t c = 0;
    std::vector<std::pair<uint64_t, uint64_t>> stack{{0, kNoVertex}};
    while (!stack.empty()) {
      auto [v, parent] = stack.back();
      stack.pop_back();
      pre[v] = c++;
      for (auto it = adj[v].rbegin(); it != adj[v].rend(); ++it) {
        if (*it != parent) stack.push_back({*it, v});
      }
    }
  }
  ExtVector<Edge> tree(&dev);
  ASSERT_TRUE(tree.AppendAll(e.data(), e.size()).ok());
  EulerTour et(&dev, kMem);
  ExtVector<TourArc> arcs(&dev);
  ExtVector<Preorder> pre_out(&dev);
  ASSERT_TRUE(et.Run(tree, n, 0, &arcs, &pre_out).ok());
  std::vector<Preorder> got;
  ASSERT_TRUE(pre_out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), n);
  for (auto& p : got) {
    ASSERT_EQ(p.pre, pre[p.vertex]) << "vertex " << p.vertex;
  }
}

TEST(EulerTour, SingleVertexAndSingleEdge) {
  MemoryBlockDevice dev(kBlock);
  {
    ExtVector<Edge> tree(&dev);
    EulerTour et(&dev, kMem);
    ExtVector<TourArc> arcs(&dev);
    ExtVector<Preorder> pre(&dev);
    ASSERT_TRUE(et.Run(tree, 1, 0, &arcs, &pre).ok());
    std::vector<Preorder> pg;
    ASSERT_TRUE(pre.ReadAll(&pg).ok());
    ASSERT_EQ(pg.size(), 1u);
    EXPECT_EQ(pg[0].pre, 0u);
  }
  {
    ExtVector<Edge> tree(&dev);
    std::vector<Edge> e = {{0, 1}};
    ASSERT_TRUE(tree.AppendAll(e.data(), e.size()).ok());
    EulerTour et(&dev, kMem);
    ExtVector<TourArc> arcs(&dev);
    ASSERT_TRUE(et.Run(tree, 2, 1, &arcs).ok());
    std::vector<TourArc> got;
    ASSERT_TRUE(arcs.ReadAll(&got).ok());
    ASSERT_EQ(got.size(), 2u);
  }
}

// --------------------------------------------------- ConnectedComponents

std::vector<uint64_t> ReferenceComponents(size_t n,
                                          const std::vector<Edge>& edges) {
  std::vector<uint64_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    uint64_t a = find(e.u), b = find(e.v);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::vector<uint64_t> label(n);
  for (size_t v = 0; v < n; ++v) label[v] = find(v);
  // Normalize to min-id per component.
  std::map<uint64_t, uint64_t> mins;
  for (size_t v = 0; v < n; ++v) {
    auto it = mins.find(label[v]);
    if (it == mins.end() || v < it->second) mins[label[v]] = std::min<uint64_t>(v, label[v]);
  }
  for (size_t v = 0; v < n; ++v) label[v] = mins[label[v]];
  return label;
}

struct CcCase {
  size_t n;
  size_t extra_edges;
  uint64_t seed;
};

class CcSweep : public ::testing::TestWithParam<CcCase> {};

TEST_P(CcSweep, MatchesUnionFind) {
  const CcCase& c = GetParam();
  MemoryBlockDevice dev(kBlock);
  Rng rng(c.seed);
  std::vector<Edge> e;
  // Random graph: some chains + random extra edges => varied components.
  for (uint64_t v = 1; v < c.n; ++v) {
    if (rng.Uniform(3) != 0) continue;  // leave many singletons
    e.push_back({rng.Uniform(v), v});
  }
  for (size_t i = 0; i < c.extra_edges; ++i) {
    e.push_back({rng.Uniform(c.n), rng.Uniform(c.n)});
  }
  std::vector<uint64_t> expect = ReferenceComponents(c.n, e);

  ExtVector<Edge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  ConnectedComponents cc(&dev, kMem);
  ExtVector<VertexLabel> labels(&dev);
  ASSERT_TRUE(cc.Run(edges, c.n, &labels).ok());
  std::vector<VertexLabel> got;
  ASSERT_TRUE(labels.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), c.n);
  for (size_t v = 0; v < c.n; ++v) {
    ASSERT_EQ(got[v].v, v);
    ASSERT_EQ(got[v].label, expect[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CcSweep,
    ::testing::Values(CcCase{10, 5, 1}, CcCase{1000, 300, 2},
                      CcCase{5000, 5000, 3}, CcCase{2000, 0, 4}));

TEST(ConnectedComponents, PathGraphConvergesInLogRounds) {
  // Worst case for pure label propagation; pointer jumping must keep the
  // round count logarithmic.
  const size_t n = 4096;
  MemoryBlockDevice dev(kBlock);
  std::vector<Edge> e;
  for (uint64_t v = 1; v < n; ++v) e.push_back({v - 1, v});
  ExtVector<Edge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  ConnectedComponents cc(&dev, kMem);
  ExtVector<VertexLabel> labels(&dev);
  ASSERT_TRUE(cc.Run(edges, n, &labels).ok());
  std::vector<VertexLabel> got;
  ASSERT_TRUE(labels.ReadAll(&got).ok());
  for (auto& vl : got) ASSERT_EQ(vl.label, 0u);
  EXPECT_LE(cc.rounds(), 16u);  // ~log2(4096) + slack
}

// --------------------------------------------------------------- External BFS

std::vector<uint64_t> ReferenceBfs(size_t n, const std::vector<Edge>& edges,
                                   uint64_t source) {
  std::vector<std::vector<uint64_t>> adj(n);
  for (const Edge& e : edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<uint64_t> dist(n, kNoVertex);
  std::queue<uint64_t> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    uint64_t v = q.front();
    q.pop();
    for (uint64_t u : adj[v]) {
      if (dist[u] == kNoVertex) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

TEST(ExternalBfs, MatchesReferenceOnRandomGraph) {
  const size_t n = 3000;
  MemoryBlockDevice dev(kBlock);
  BufferPool pool(&dev, 8);
  Rng rng(42);
  std::vector<Edge> e;
  for (size_t i = 0; i < 2 * n; ++i) {
    e.push_back({rng.Uniform(n), rng.Uniform(n)});
  }
  std::vector<uint64_t> expect = ReferenceBfs(n, e, 0);

  ExtVector<Edge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  ExtGraph g(&dev, &pool);
  ASSERT_TRUE(g.Build(edges, n, kMem, /*symmetrize=*/true).ok());
  ExternalBfs bfs(&dev, kMem);
  ExtVector<VertexDist> out(&dev);
  ASSERT_TRUE(bfs.Run(g, 0, &out).ok());
  std::vector<VertexDist> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  size_t reachable = 0;
  for (uint64_t d : expect) {
    if (d != kNoVertex) reachable++;
  }
  ASSERT_EQ(got.size(), reachable);
  for (auto& vd : got) {
    ASSERT_EQ(vd.dist, expect[vd.v]) << "vertex " << vd.v;
  }
}

TEST(ExternalBfs, GridGraphLevels) {
  // 30x30 grid from a corner: levels are anti-diagonals, 59 levels.
  const size_t side = 30, n = side * side;
  MemoryBlockDevice dev(kBlock);
  BufferPool pool(&dev, 8);
  std::vector<Edge> e;
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      uint64_t v = r * side + c;
      if (c + 1 < side) e.push_back({v, v + 1});
      if (r + 1 < side) e.push_back({v, v + side});
    }
  }
  ExtVector<Edge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  ExtGraph g(&dev, &pool);
  ASSERT_TRUE(g.Build(edges, n, kMem, true).ok());
  ExternalBfs bfs(&dev, kMem);
  ExtVector<VertexDist> out(&dev);
  ASSERT_TRUE(bfs.Run(g, 0, &out).ok());
  EXPECT_EQ(bfs.levels(), 2 * side - 1);
  std::vector<VertexDist> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), n);
  for (auto& vd : got) {
    uint64_t r = vd.v / side, c = vd.v % side;
    ASSERT_EQ(vd.dist, r + c);
  }
}

TEST(ExternalBfs, MatchesInternalBaseline) {
  const size_t n = 1500;
  MemoryBlockDevice dev(kBlock);
  BufferPool pool(&dev, 8);
  Rng rng(77);
  std::vector<Edge> e;
  for (size_t i = 0; i < 3 * n; ++i) {
    e.push_back({rng.Uniform(n), rng.Uniform(n)});
  }
  ExtVector<Edge> edges(&dev);
  ASSERT_TRUE(edges.AppendAll(e.data(), e.size()).ok());
  ExtGraph g(&dev, &pool);
  ASSERT_TRUE(g.Build(edges, n, kMem, true).ok());

  ExternalBfs bfs(&dev, kMem);
  ExtVector<VertexDist> a(&dev), b(&dev);
  ASSERT_TRUE(bfs.Run(g, 3, &a).ok());
  ASSERT_TRUE(InternalBfsBaseline(g, 3, &pool, &b).ok());
  std::vector<VertexDist> va, vb;
  ASSERT_TRUE(a.ReadAll(&va).ok());
  ASSERT_TRUE(b.ReadAll(&vb).ok());
  std::map<uint64_t, uint64_t> ma, mb;
  for (auto& vd : va) ma[vd.v] = vd.dist;
  for (auto& vd : vb) mb[vd.v] = vd.dist;
  EXPECT_EQ(ma, mb);
}

}  // namespace
}  // namespace vem
