// Redundancy-plane tests: RAID-5-style rotated parity and mirroring on
// IndependentDiskDevice, degraded mode, and rebuild-onto-spare.
//
// The acceptance bar (ISSUE PR 10): with redundancy armed at D=4 and one
// child fail-stopped MID-workload, an external sort and a batched
// random-read scan COMPLETE, with logical IoStats — parent and every
// child — bit-identical to the healthy run. Reconstruction traffic is
// visible only on the RedundancyStats gauge. A rebuild onto a hot spare
// then restores non-degraded reads.
//
// Engine-off on the stats-identity workloads so every run is exactly
// deterministic; engine integration (fail-stop latching quarantine,
// HealthSnapshot flags) is covered separately below.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ext_vector.h"
#include "io/faulty_device.h"
#include "io/independent_disk_device.h"
#include "io/io_engine.h"
#include "io/memory_block_device.h"
#include "io/rebuild_manager.h"
#include "io/retry_policy.h"
#include "sort/external_sort.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kSeed = 0x5EED5EED;

/// Fill `buf` with a per-(id, version) pattern so misdirected or stale
/// reconstructions cannot collide with the expected content.
void PatternBlock(char* buf, uint64_t id, uint64_t version) {
  Rng rng(id * 1000003 + version);
  for (size_t i = 0; i + sizeof(uint64_t) <= kBlock; i += sizeof(uint64_t)) {
    uint64_t v = rng.Next();
    std::memcpy(buf + i, &v, sizeof(v));
  }
}

/// D=4 device of Faulty(Memory) children with a redundancy mode armed.
struct RedundantRig {
  std::vector<std::unique_ptr<MemoryBlockDevice>> inners;
  std::vector<FaultyBlockDevice*> wrappers;
  std::unique_ptr<IndependentDiskDevice> dev;

  explicit RedundantRig(Redundancy mode, size_t group_width = 0,
                        size_t num_disks = 4) {
    std::vector<std::unique_ptr<BlockDevice>> disks;
    for (size_t d = 0; d < num_disks; ++d) {
      inners.push_back(std::make_unique<MemoryBlockDevice>(kBlock));
      auto w = std::make_unique<FaultyBlockDevice>(inners.back().get());
      wrappers.push_back(w.get());
      disks.push_back(std::move(w));
    }
    dev = std::make_unique<IndependentDiskDevice>(std::move(disks), kSeed);
    EXPECT_TRUE(dev->valid());
    dev->SetRedundancy(mode, group_width);
    EXPECT_EQ(dev->redundancy(), mode);
  }
};

// ------------------------------------------------- fail-stop injection

TEST(FailStop, SetDeadAfterRejectsEveryFurtherAttempt) {
  MemoryBlockDevice inner(kBlock);
  FaultyBlockDevice dev(&inner);
  uint64_t id = dev.Allocate();
  char buf[kBlock];
  PatternBlock(buf, id, 0);
  ASSERT_TRUE(dev.Write(id, buf).ok());  // attempt #1
  dev.SetDeadAfter(2);                   // attempt #2 is the last good one
  char out[kBlock];
  EXPECT_TRUE(dev.Read(id, out).ok());  // attempt #2
  EXPECT_FALSE(dev.dead());
  Status s = dev.Read(id, out);  // attempt #3: dead
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_FALSE(s.IsTransient()) << "fail-stop must be permanent";
  EXPECT_TRUE(dev.dead());
  EXPECT_TRUE(dev.Write(id, buf).IsIOError());
  EXPECT_TRUE(dev.ReadUncounted(id, out).IsIOError());
  // Deferred accounting still reaches a dead device (it moves no bytes).
  IoStats before = dev.stats();
  dev.AccountReads(3);
  EXPECT_EQ(dev.stats().block_reads, before.block_reads + 3);
}

TEST(FailStop, EscalatesToLatchedQuarantine) {
  MemoryBlockDevice inner(kBlock);
  FaultyBlockDevice faulty(&inner);
  faulty.SetDeadAfter(0);  // dead from the first attempt
  RetryPolicy::Config cfg;
  cfg.retry_limit = 2;
  cfg.base_us = 0;
  RetryPolicy policy(cfg);
  IoEngine engine(2);
  const uint64_t tag = reinterpret_cast<uintptr_t>(&faulty);
  char buf[kBlock];
  Status s = RunWithDiskRetry(&policy, &engine, tag, /*key=*/0,
                              [&] { return faulty.Read(0, buf); });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(engine.DiskQuarantined(tag));
  auto health = engine.DiskHealth(tag);
  EXPECT_TRUE(health.fail_stopped);
  EXPECT_TRUE(health.quarantined);
  // Success evidence cannot clear a fail-stop latch (a real dead head
  // never produces successes; this guards against gauge cross-talk).
  for (int i = 0; i < 64; ++i) engine.ReportDiskResult(tag, true, 100);
  EXPECT_TRUE(engine.DiskQuarantined(tag));
  // Only the rebuild swap (ForgetDisk) retires the record.
  engine.ForgetDisk(tag);
  EXPECT_FALSE(engine.DiskQuarantined(tag));
  EXPECT_EQ(engine.HealthSnapshot().count(tag), 0u);
}

// --------------------------------------------------- parity placement

TEST(RedundancyPlacement, ParityGroupMembersLandOnDistinctDisks) {
  RedundantRig rig(Redundancy::kParity);  // G = D = 4 -> 3 data + parity
  ASSERT_EQ(rig.dev->parity_group_width(), 4u);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 96; ++i) ids.push_back(rig.dev->Allocate());
  const size_t gd = rig.dev->parity_group_width() - 1;
  for (size_t g = 0; g * gd < ids.size(); ++g) {
    uint64_t mask = 0;
    for (size_t k = 0; k < gd && g * gd + k < ids.size(); ++k) {
      size_t d = rig.dev->disk_of(ids[g * gd + k]);
      ASSERT_LT(d, 4u);
      EXPECT_EQ((mask >> d) & 1, 0u)
          << "group " << g << " colocates two members on disk " << d;
      mask |= 1ull << d;
    }
  }
}

TEST(RedundancyPlacement, ArmingIsRejectedAfterFirstAllocate) {
  IndependentDiskDevice dev(4, kBlock, kSeed);
  (void)dev.Allocate();
  dev.SetRedundancy(Redundancy::kParity);
  EXPECT_EQ(dev.redundancy(), Redundancy::kNone);
}

// ------------------------------------------------- parity consistency

// Satellite: after a mix of writes, overwrites, frees and reallocations,
// kill each disk in turn (same seed => same placement) — every live
// block must reconstruct to exactly its last-written content.
TEST(RedundancyConsistency, ParityConsistentAfterRandomWritesAnyDiskDead) {
  for (size_t kill = 0; kill < 4; ++kill) {
    RedundantRig rig(Redundancy::kParity);
    std::map<uint64_t, std::vector<char>> shadow;
    std::vector<uint64_t> live;
    Rng rng(kSeed + 7);  // same op sequence for every `kill`
    for (int i = 0; i < 64; ++i) {
      uint64_t id = rig.dev->Allocate();
      live.push_back(id);
      std::vector<char> buf(kBlock);
      PatternBlock(buf.data(), id, 0);
      ASSERT_TRUE(rig.dev->Write(id, buf.data()).ok());
      shadow[id] = std::move(buf);
    }
    // Random single-block overwrites...
    for (int i = 0; i < 48; ++i) {
      uint64_t id = live[rng.Next() % live.size()];
      std::vector<char> buf(kBlock);
      PatternBlock(buf.data(), id, 1 + i);
      ASSERT_TRUE(rig.dev->Write(id, buf.data()).ok());
      shadow[id] = std::move(buf);
    }
    // ...a batched overwrite (exercises full-stripe and RMW paths)...
    {
      std::vector<uint64_t> bids(live.begin(), live.begin() + 24);
      std::vector<std::vector<char>> payload(bids.size(),
                                             std::vector<char>(kBlock));
      std::vector<const void*> ptrs;
      for (size_t i = 0; i < bids.size(); ++i) {
        PatternBlock(payload[i].data(), bids[i], 99);
        ptrs.push_back(payload[i].data());
      }
      ASSERT_TRUE(
          rig.dev->WriteBatch(bids.data(), ptrs.data(), bids.size()).ok());
      for (size_t i = 0; i < bids.size(); ++i) shadow[bids[i]] = payload[i];
    }
    // ...frees (XOR-out) and reallocations.
    for (int i = 0; i < 12; ++i) {
      size_t at = rng.Next() % live.size();
      rig.dev->Free(live[at]);
      shadow.erase(live[at]);
      live.erase(live.begin() + at);
    }
    for (int i = 0; i < 6; ++i) {
      uint64_t id = rig.dev->Allocate();
      live.push_back(id);
      std::vector<char> buf(kBlock);
      PatternBlock(buf.data(), id, 7);
      ASSERT_TRUE(rig.dev->Write(id, buf.data()).ok());
      shadow[id] = std::move(buf);
    }

    rig.dev->MarkDiskDead(kill);
    uint64_t degraded_home = 0;
    for (uint64_t id : live) {
      std::vector<char> out(kBlock);
      Status s = rig.dev->Read(id, out.data());
      ASSERT_TRUE(s.ok()) << "disk " << kill << " id " << id << ": "
                          << s.ToString();
      EXPECT_EQ(std::memcmp(out.data(), shadow[id].data(), kBlock), 0)
          << "disk " << kill << " id " << id << " reconstructed wrong bytes";
      if (rig.dev->disk_of(id) == kill) degraded_home++;
    }
    EXPECT_GT(degraded_home, 0u) << "placement left disk " << kill << " empty";
    EXPECT_GE(rig.dev->redundancy_stats().degraded_reads, degraded_home);
  }
}

TEST(RedundancyConsistency, MirrorServesCopyWhenPrimaryDead) {
  RedundantRig rig(Redundancy::kMirror);
  std::map<uint64_t, std::vector<char>> shadow;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 48; ++i) {
    uint64_t id = rig.dev->Allocate();
    ids.push_back(id);
    std::vector<char> buf(kBlock);
    PatternBlock(buf.data(), id, i);
    ASSERT_TRUE(rig.dev->Write(id, buf.data()).ok());
    shadow[id] = std::move(buf);
  }
  rig.dev->MarkDiskDead(2);
  for (uint64_t id : ids) {
    std::vector<char> out(kBlock);
    ASSERT_TRUE(rig.dev->Read(id, out.data()).ok()) << "id " << id;
    EXPECT_EQ(std::memcmp(out.data(), shadow[id].data(), kBlock), 0);
  }
  EXPECT_GT(rig.dev->redundancy_stats().degraded_reads, 0u);
}

TEST(RedundancyConsistency, DegradedReadOfNeverWrittenBlockIsCorruption) {
  RedundantRig rig(Redundancy::kParity);
  uint64_t id = rig.dev->Allocate();
  rig.dev->MarkDiskDead(rig.dev->disk_of(id));
  char out[kBlock];
  Status s = rig.dev->Read(id, out);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// --------------------------------------------- degraded-mode workloads

struct RedundantWorkloadResult {
  IoStats parent;
  std::vector<IoStats> children;
  std::vector<uint64_t> output;
  RedundancyStats gauge;
};

/// External sort (forecast merge, write-behind depth 8) over a D=4
/// redundant device; when `kill_mid_run`, head 1 fail-stops after its
/// 300th transfer attempt — mid-sort, past the first run formation.
RedundantWorkloadResult RunRedundantSortWorkload(Redundancy mode,
                                                 bool kill_mid_run) {
  RedundantRig rig(mode);
  if (kill_mid_run) rig.wrappers[1]->SetDeadAfter(300);
  RedundantWorkloadResult res;
  Rng rng(41);
  std::vector<uint64_t> data(20000);
  for (auto& v : data) v = rng.Next();
  IoProbe probe(*rig.dev);
  ExtVector<uint64_t> input(rig.dev.get());
  EXPECT_TRUE(input.AppendAll(data.data(), data.size(), /*depth=*/8).ok());
  ExternalSorter<uint64_t> sorter(rig.dev.get(), /*memory=*/8 * kBlock);
  sorter.set_forecast_merge(true);
  sorter.set_prefetch_depth(8);
  ExtVector<uint64_t> out(rig.dev.get());
  Status s = sorter.Sort(input, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(sorter.metrics().initial_runs, 1u);
  EXPECT_TRUE(out.ReadAll(&res.output).ok());
  res.parent = probe.delta();
  for (size_t d = 0; d < rig.dev->num_disks(); ++d) {
    res.children.push_back(rig.dev->disk_stats(d));
  }
  res.gauge = rig.dev->redundancy_stats();
  if (kill_mid_run) {
    EXPECT_TRUE(rig.wrappers[1]->dead()) << "fail-stop never fired";
    EXPECT_TRUE(rig.dev->DiskDead(1)) << "device never latched the head";
  }
  return res;
}

void ExpectBitIdentical(const RedundantWorkloadResult& a,
                        const RedundantWorkloadResult& b, const char* what) {
  EXPECT_EQ(a.output, b.output) << what;
  EXPECT_EQ(a.parent, b.parent) << what;
  ASSERT_EQ(a.children.size(), b.children.size());
  for (size_t d = 0; d < a.children.size(); ++d) {
    EXPECT_EQ(a.children[d], b.children[d]) << what << " child " << d;
  }
}

// THE tentpole acceptance test: kill one of four heads mid-sort under
// parity — the sort completes by reconstruction, and the logical cost
// model cannot tell the runs apart. Only the physical gauge can.
TEST(RedundancyDegraded, KillOneDiskMidSortParityStatsIdentical) {
  RedundantWorkloadResult healthy =
      RunRedundantSortWorkload(Redundancy::kParity, false);
  RedundantWorkloadResult degraded =
      RunRedundantSortWorkload(Redundancy::kParity, true);
  EXPECT_TRUE(std::is_sorted(healthy.output.begin(), healthy.output.end()));
  ExpectBitIdentical(healthy, degraded, "parity");
  EXPECT_EQ(healthy.gauge.degraded_reads, 0u);
  EXPECT_GT(healthy.gauge.parity_writes, 0u);  // parity maintained anyway
  EXPECT_GT(degraded.gauge.degraded_reads, 0u);
  EXPECT_GT(degraded.gauge.degraded_writes, 0u);
}

TEST(RedundancyDegraded, KillOneDiskMidSortMirrorStatsIdentical) {
  RedundantWorkloadResult healthy =
      RunRedundantSortWorkload(Redundancy::kMirror, false);
  RedundantWorkloadResult degraded =
      RunRedundantSortWorkload(Redundancy::kMirror, true);
  ExpectBitIdentical(healthy, degraded, "mirror");
  EXPECT_GT(degraded.gauge.degraded_reads, 0u);
  // Satellite: mirror and parity are interchangeable at the data level —
  // the sorted output is the same; only the physical redundancy traffic
  // (and, placement being scheme-dependent, the wave counts) differs.
  RedundantWorkloadResult parity =
      RunRedundantSortWorkload(Redundancy::kParity, true);
  EXPECT_EQ(healthy.output, parity.output);
}

// Batched random reads (the PDM's other canonical workload): a head
// fail-stopping in the MIDDLE of the batched scan leaves the counted
// batch accounting bit-identical — mid-batch failures are topped up on
// the dead child's deferred plane.
TEST(RedundancyDegraded, BatchedRandomReadsMidBatchDeathStatsIdentical) {
  auto run = [](bool kill) {
    RedundantRig rig(Redundancy::kParity);
    std::vector<uint64_t> ids;
    std::vector<std::vector<char>> payload;
    for (int i = 0; i < 240; ++i) {
      uint64_t id = rig.dev->Allocate();
      ids.push_back(id);
      payload.emplace_back(kBlock);
      PatternBlock(payload.back().data(), id, i);
    }
    {
      std::vector<const void*> ptrs;
      for (auto& p : payload) ptrs.push_back(p.data());
      EXPECT_TRUE(
          rig.dev->WriteBatch(ids.data(), ptrs.data(), ids.size()).ok());
    }
    if (kill) {
      // Die 10 transfer attempts into the read phase: mid-batch, after
      // some of this head's reads in the running batch already landed.
      FaultyBlockDevice* w = rig.wrappers[2];
      w->SetDeadAfter(w->reads_seen() + w->writes_seen() + 10);
    }
    // Shuffled batched reads, 16 blocks a batch.
    std::vector<size_t> order(ids.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    Rng rng(kSeed + 3);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Next() % i]);
    }
    IoProbe probe(*rig.dev);
    std::vector<IoBuffer> bufs;
    for (size_t base = 0; base < order.size(); base += 16) {
      std::vector<uint64_t> bids;
      std::vector<void*> ptrs;
      for (size_t k = base; k < std::min(base + 16, order.size()); ++k) {
        bids.push_back(ids[order[k]]);
        bufs.push_back(AllocIoBuffer(kBlock));
        ptrs.push_back(bufs.back().get());
      }
      EXPECT_TRUE(
          rig.dev->ReadBatch(bids.data(), ptrs.data(), bids.size()).ok());
      for (size_t k = base; k < std::min(base + 16, order.size()); ++k) {
        EXPECT_EQ(std::memcmp(bufs[k].get(), payload[order[k]].data(), kBlock),
                  0)
            << "block " << ids[order[k]] << (kill ? " (degraded)" : "");
      }
    }
    RedundantWorkloadResult res;
    res.parent = probe.delta();
    for (size_t d = 0; d < rig.dev->num_disks(); ++d) {
      res.children.push_back(rig.dev->disk_stats(d));
    }
    res.gauge = rig.dev->redundancy_stats();
    if (kill) {
      EXPECT_TRUE(rig.dev->DiskDead(2));
    }
    return res;
  };
  RedundantWorkloadResult healthy = run(false);
  RedundantWorkloadResult degraded = run(true);
  EXPECT_EQ(healthy.parent, degraded.parent);
  for (size_t d = 0; d < healthy.children.size(); ++d) {
    EXPECT_EQ(healthy.children[d], degraded.children[d]) << "child " << d;
  }
  EXPECT_GT(degraded.gauge.degraded_reads, 0u);
}

// ------------------------------------------------------------- rebuild

TEST(RedundancyRebuild, RebuildOntoSpareRestoresNonDegradedReads) {
  RedundantRig rig(Redundancy::kParity);
  std::map<uint64_t, std::vector<char>> shadow;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    uint64_t id = rig.dev->Allocate();
    ids.push_back(id);
    std::vector<char> buf(kBlock);
    PatternBlock(buf.data(), id, i);
    ASSERT_TRUE(rig.dev->Write(id, buf.data()).ok());
    shadow[id] = std::move(buf);
  }
  rig.dev->MarkDiskDead(1);
  ASSERT_TRUE(rig.dev->DiskDegraded(1));
  // No spare parked: rebuild is Unavailable.
  EXPECT_TRUE(rig.dev->RebuildDisk(1).IsUnavailable());
  ASSERT_TRUE(
      rig.dev->AttachSpare(std::make_unique<MemoryBlockDevice>(kBlock)).ok());
  EXPECT_EQ(rig.dev->spares_available(), 1u);
  Status s = rig.dev->RebuildDisk(1, nullptr, /*batch_blocks=*/4);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(rig.dev->spares_available(), 0u);
  EXPECT_FALSE(rig.dev->DiskDead(1));
  EXPECT_FALSE(rig.dev->DiskDegraded(1));
  RedundancyStats after = rig.dev->redundancy_stats();
  EXPECT_GT(after.rebuilt_blocks, 0u);
  // Satellite acceptance: every block — including the rebuilt head's —
  // reads back correct WITHOUT any further reconstruction.
  for (uint64_t id : ids) {
    std::vector<char> out(kBlock);
    ASSERT_TRUE(rig.dev->Read(id, out.data()).ok()) << "id " << id;
    EXPECT_EQ(std::memcmp(out.data(), shadow[id].data(), kBlock), 0);
  }
  EXPECT_EQ(rig.dev->redundancy_stats().degraded_reads, after.degraded_reads)
      << "reads after the rebuild still went degraded";
  // The rebuilt device keeps working: the group parity was recomputed on
  // the spare, so a SECOND head death is survivable too.
  rig.dev->MarkDiskDead(3);
  for (uint64_t id : ids) {
    std::vector<char> out(kBlock);
    ASSERT_TRUE(rig.dev->Read(id, out.data()).ok())
        << "post-rebuild reconstruction, id " << id;
    EXPECT_EQ(std::memcmp(out.data(), shadow[id].data(), kBlock), 0);
  }
}

TEST(RedundancyRebuild, CancelledRebuildReParksSpareAndStaysDegraded) {
  RedundantRig rig(Redundancy::kParity);
  std::vector<uint64_t> ids;
  char buf[kBlock];
  for (int i = 0; i < 32; ++i) {
    ids.push_back(rig.dev->Allocate());
    PatternBlock(buf, ids.back(), i);
    ASSERT_TRUE(rig.dev->Write(ids.back(), buf).ok());
  }
  rig.dev->MarkDiskDead(0);
  ASSERT_TRUE(
      rig.dev->AttachSpare(std::make_unique<MemoryBlockDevice>(kBlock)).ok());
  Status s = rig.dev->RebuildDisk(0, /*cancel=*/[] { return true; },
                                  /*batch_blocks=*/4);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_EQ(rig.dev->spares_available(), 1u) << "spare not re-parked";
  EXPECT_TRUE(rig.dev->DiskDead(0));
  // Content still served (degraded) after the undone drain.
  std::vector<char> out(kBlock);
  for (size_t i = 0; i < ids.size(); ++i) {
    PatternBlock(buf, ids[i], i);
    ASSERT_TRUE(rig.dev->Read(ids[i], out.data()).ok());
    EXPECT_EQ(std::memcmp(out.data(), buf, kBlock), 0);
  }
}

TEST(RedundancyRebuild, RebuildManagerDrainsDeadHead) {
  RedundantRig rig(Redundancy::kMirror);
  std::map<uint64_t, std::vector<char>> shadow;
  for (int i = 0; i < 40; ++i) {
    uint64_t id = rig.dev->Allocate();
    std::vector<char> buf(kBlock);
    PatternBlock(buf.data(), id, i);
    ASSERT_TRUE(rig.dev->Write(id, buf.data()).ok());
    shadow[id] = std::move(buf);
  }
  rig.dev->MarkDiskDead(3);
  RebuildManager mgr(rig.dev.get());
  // Pass 1: degraded head but no spare — nothing the manager can do.
  EXPECT_TRUE(mgr.RunOnce().ok());
  EXPECT_EQ(mgr.stats().rebuilds_completed, 0u);
  EXPECT_TRUE(rig.dev->DiskDead(3));
  // Pass 2: spare parked — the manager drains and swaps.
  ASSERT_TRUE(
      rig.dev->AttachSpare(std::make_unique<MemoryBlockDevice>(kBlock)).ok());
  EXPECT_TRUE(mgr.RunOnce().ok());
  EXPECT_EQ(mgr.stats().rebuilds_completed, 1u);
  EXPECT_FALSE(rig.dev->DiskDead(3));
  for (auto& [id, expect] : shadow) {
    std::vector<char> out(kBlock);
    ASSERT_TRUE(rig.dev->Read(id, out.data()).ok()) << "id " << id;
    EXPECT_EQ(std::memcmp(out.data(), expect.data(), kBlock), 0);
  }
  // Pass 3: healthy fleet — idle no-op.
  EXPECT_TRUE(mgr.RunOnce().ok());
  EXPECT_EQ(mgr.stats().rebuilds_completed, 1u);
}

}  // namespace
}  // namespace vem
