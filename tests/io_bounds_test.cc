// I/O-complexity property tests: the PDM cost formulas, asserted exactly.
//
// These are the library's strongest regression guards: for each core
// primitive the measured block I/O count must EQUAL (not merely bound)
// the closed-form cost on block-aligned workloads, across a parameter
// sweep. Any accidental extra read or write anywhere in the stack fails
// these tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ext_vector.h"
#include "io/memory_block_device.h"
#include "io/striped_device.h"
#include "sort/external_sort.h"
#include "util/random.h"

namespace vem {
namespace {

struct Pdm {
  size_t block_bytes;
  size_t mem_bytes;
  size_t n;  // items (u64)
};

class ExactCostSweep : public ::testing::TestWithParam<Pdm> {};

TEST_P(ExactCostSweep, ScanCostsExactlyCeilNOverB) {
  const Pdm& p = GetParam();
  const size_t kB = p.block_bytes / sizeof(uint64_t);
  MemoryBlockDevice dev(p.block_bytes);
  ExtVector<uint64_t> v(&dev);
  IoProbe wp(dev);
  {
    ExtVector<uint64_t>::Writer w(&v);
    for (size_t i = 0; i < p.n; ++i) ASSERT_TRUE(w.Append(i));
    ASSERT_TRUE(w.Finish().ok());
  }
  EXPECT_EQ(wp.delta().block_writes, (p.n + kB - 1) / kB);
  EXPECT_EQ(wp.delta().block_reads, 0u);
  IoProbe rp(dev);
  {
    ExtVector<uint64_t>::Reader r(&v);
    uint64_t x, sum = 0;
    while (r.Next(&x)) sum += x;
    ASSERT_EQ(sum, p.n * (p.n - 1) / 2);
  }
  EXPECT_EQ(rp.delta().block_reads, (p.n + kB - 1) / kB);
  EXPECT_EQ(rp.delta().block_writes, 0u);
}

TEST_P(ExactCostSweep, MergeSortCostsExactly2NBTimesPassesPlusOne) {
  const Pdm& p = GetParam();
  const size_t kB = p.block_bytes / sizeof(uint64_t);
  const size_t kM = p.mem_bytes / sizeof(uint64_t);
  if (p.n % kB != 0 || p.n % kM != 0) {
    GTEST_SKIP() << "exact formula needs block- and memory-aligned N";
  }
  MemoryBlockDevice dev(p.block_bytes);
  ExtVector<uint64_t> input(&dev);
  Rng rng(p.n);
  {
    ExtVector<uint64_t>::Writer w(&input);
    for (size_t i = 0; i < p.n; ++i) ASSERT_TRUE(w.Append(rng.Next()));
    ASSERT_TRUE(w.Finish().ok());
  }
  ExternalSorter<uint64_t> sorter(&dev, p.mem_bytes);
  ExtVector<uint64_t> out(&dev);
  IoProbe probe(dev);
  ASSERT_TRUE(sorter.Sort(input, &out).ok());
  const auto& m = sorter.metrics();
  // Run formation: read N/B + write N/B. Each merge pass: the same.
  uint64_t expect = 2 * (p.n / kB) * (1 + m.merge_passes);
  EXPECT_EQ(probe.delta().block_ios(), expect)
      << "passes=" << m.merge_passes << " runs=" << m.initial_runs;
  // Pass count itself is exactly ceil(log_k(runs)).
  if (m.initial_runs > 1) {
    double expect_passes = std::ceil(std::log(double(m.initial_runs)) /
                                     std::log(double(m.fan_in)));
    EXPECT_EQ(m.merge_passes, size_t(expect_passes));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExactCostSweep,
    ::testing::Values(Pdm{256, 2048, 1u << 12}, Pdm{256, 2048, 1u << 16},
                      Pdm{1024, 8192, 1u << 14}, Pdm{1024, 8192, 1u << 18},
                      Pdm{4096, 65536, 1u << 16},
                      Pdm{4096, 65536, 1u << 20}));

TEST(ExactCost, StripedScanParallelStepsAreExactlyNOverDB) {
  for (size_t d : {2u, 4u, 8u}) {
    const size_t kChild = 512;
    const size_t kB = d * kChild / sizeof(uint64_t);
    const size_t kN = kB * 100;
    StripedDevice dev(d, kChild);
    ExtVector<uint64_t> v(&dev);
    {
      ExtVector<uint64_t>::Writer w(&v);
      for (size_t i = 0; i < kN; ++i) ASSERT_TRUE(w.Append(i));
      ASSERT_TRUE(w.Finish().ok());
    }
    IoProbe probe(dev);
    {
      ExtVector<uint64_t>::Reader r(&v);
      uint64_t x, s = 0;
      while (r.Next(&x)) s += x;
      (void)s;
    }
    EXPECT_EQ(probe.delta().parallel_reads, kN / kB);
    EXPECT_EQ(probe.delta().block_reads, d * (kN / kB));
    // Perfect per-disk balance.
    for (size_t disk = 0; disk < d; ++disk) {
      EXPECT_EQ(dev.disk_stats(disk).block_reads,
                dev.disk_stats(0).block_reads);
    }
  }
}

TEST(ExactCost, ExtVectorRandomAccessChargesOnePerMiss) {
  // With a 1-frame pool, every access to a different block costs exactly
  // one read (plus one write-back if dirty).
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 1);
  const size_t kB = 256 / sizeof(uint64_t);
  ExtVector<uint64_t> v(&dev, &pool);
  std::vector<uint64_t> data(kB * 10);
  for (size_t i = 0; i < data.size(); ++i) data[i] = i;
  ASSERT_TRUE(v.AppendAll(data.data(), data.size()).ok());
  IoProbe probe(dev);
  uint64_t x;
  for (size_t blk = 0; blk < 10; ++blk) {
    ASSERT_TRUE(v.Get(blk * kB, &x).ok());  // one block each
  }
  EXPECT_EQ(probe.delta().block_reads, 10u);
  // Re-read a resident block repeatedly: zero additional I/O.
  ASSERT_TRUE(v.Get(0, &x).ok());  // prime the single frame with block 0
  IoProbe probe2(dev);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(v.Get(0, &x).ok());
  EXPECT_EQ(probe2.delta().block_ios(), 0u);
}

TEST(ExactCost, WriterPartialTailReuseCostsOneReadOneWrite) {
  MemoryBlockDevice dev(256);
  ExtVector<uint64_t> v(&dev);
  std::vector<uint64_t> a{1, 2, 3};
  ASSERT_TRUE(v.AppendAll(a.data(), a.size()).ok());
  // Appending to the partial tail must re-read it once and rewrite it.
  IoProbe probe(dev);
  std::vector<uint64_t> b{4, 5};
  ASSERT_TRUE(v.AppendAll(b.data(), b.size()).ok());
  EXPECT_EQ(probe.delta().block_reads, 1u);
  EXPECT_EQ(probe.delta().block_writes, 1u);
  EXPECT_EQ(dev.num_allocated(), 1u);  // still one block
}

}  // namespace
}  // namespace vem
