// Tests for external string sorting and suffix array construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "io/memory_block_device.h"
#include "string/string_sort.h"
#include "string/suffix_array.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr size_t kMem = 4096;

Status BuildCorpus(const std::vector<std::string>& strings,
                   StringCorpus* corpus) {
  for (const auto& s : strings) {
    VEM_RETURN_IF_ERROR(corpus->Add(s));
  }
  return corpus->Finalize();
}

void CheckSorted(const std::vector<std::string>& strings,
                 MemoryBlockDevice* dev) {
  StringCorpus corpus(dev);
  ASSERT_TRUE(BuildCorpus(strings, &corpus).ok());
  ASSERT_EQ(corpus.size(), strings.size());
  ExternalStringSort sorter(dev, kMem);
  ExtVector<uint64_t> ids(dev);
  ASSERT_TRUE(sorter.Sort(corpus, &ids).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(ids.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), strings.size());
  // Expected: stable sort of indices by string value.
  std::vector<uint64_t> expect(strings.size());
  std::iota(expect.begin(), expect.end(), 0);
  std::stable_sort(expect.begin(), expect.end(),
                   [&](uint64_t a, uint64_t b) {
                     if (strings[a] != strings[b]) return strings[a] < strings[b];
                     return a < b;  // ties by id (our sorter's rule)
                   });
  EXPECT_EQ(got, expect);
}

TEST(StringSort, BasicWords) {
  MemoryBlockDevice dev(kBlock);
  CheckSorted({"banana", "apple", "cherry", "date", "apricot"}, &dev);
}

TEST(StringSort, PrefixesAndDuplicates) {
  MemoryBlockDevice dev(kBlock);
  CheckSorted({"abc", "ab", "abcd", "abc", "a", "", "ab", "abcde"}, &dev);
}

TEST(StringSort, LongSharedPrefixesNeedManyRounds) {
  MemoryBlockDevice dev(kBlock);
  std::string common(100, 'x');
  std::vector<std::string> strings;
  for (int i = 0; i < 50; ++i) {
    strings.push_back(common + std::string(1, 'a' + (i * 7) % 26) +
                      std::to_string(i));
  }
  StringCorpus corpus(&dev);
  ASSERT_TRUE(BuildCorpus(strings, &corpus).ok());
  ExternalStringSort sorter(&dev, kMem);
  ExtVector<uint64_t> ids(&dev);
  ASSERT_TRUE(sorter.Sort(corpus, &ids).ok());
  EXPECT_GT(sorter.rounds(), 10u);  // 100-byte prefix / 8 bytes per round
  std::vector<uint64_t> got;
  ASSERT_TRUE(ids.ReadAll(&got).ok());
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(strings[got[i - 1]], strings[got[i]]);
  }
}

TEST(StringSort, RandomCorpusMatchesStdSort) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(55);
  std::vector<std::string> strings;
  const char* alphabet = "abcdefg";  // small alphabet => many ties
  for (int i = 0; i < 3000; ++i) {
    size_t len = rng.Uniform(20);
    std::string s;
    for (size_t j = 0; j < len; ++j) s.push_back(alphabet[rng.Uniform(7)]);
    strings.push_back(std::move(s));
  }
  CheckSorted(strings, &dev);
}

TEST(StringSort, RejectsNulBytes) {
  MemoryBlockDevice dev(kBlock);
  StringCorpus corpus(&dev);
  std::string bad("a\0b", 3);
  EXPECT_TRUE(corpus.Add(bad).IsInvalidArgument());
}

TEST(StringCorpus, GetRoundTrip) {
  MemoryBlockDevice dev(kBlock);
  StringCorpus corpus(&dev);
  std::vector<std::string> strings = {"hello", "", "world", "xyz"};
  ASSERT_TRUE(BuildCorpus(strings, &corpus).ok());
  for (size_t i = 0; i < strings.size(); ++i) {
    std::string s;
    ASSERT_TRUE(corpus.Get(i, &s).ok());
    EXPECT_EQ(s, strings[i]);
  }
}

// ---------------------------------------------------------------- SuffixArray

std::vector<uint64_t> ReferenceSuffixArray(const std::string& text) {
  std::vector<uint64_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](uint64_t a, uint64_t b) {
    return text.substr(a) < text.substr(b);
  });
  return sa;
}

void CheckSuffixArray(const std::string& text, MemoryBlockDevice* dev) {
  ExtVector<uint8_t> tv(dev);
  ASSERT_TRUE(tv.AppendAll(reinterpret_cast<const uint8_t*>(text.data()),
                           text.size())
                  .ok());
  SuffixArrayBuilder builder(dev, kMem);
  ExtVector<uint64_t> sa(dev);
  ASSERT_TRUE(builder.Build(tv, &sa).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(sa.ReadAll(&got).ok());
  EXPECT_EQ(got, ReferenceSuffixArray(text)) << "text size " << text.size();
}

TEST(SuffixArray, Banana) {
  MemoryBlockDevice dev(kBlock);
  CheckSuffixArray("banana", &dev);
}

TEST(SuffixArray, Mississippi) {
  MemoryBlockDevice dev(kBlock);
  CheckSuffixArray("mississippi", &dev);
}

TEST(SuffixArray, AllSameCharacter) {
  MemoryBlockDevice dev(kBlock);
  CheckSuffixArray(std::string(500, 'a'), &dev);
}

TEST(SuffixArray, PeriodicText) {
  MemoryBlockDevice dev(kBlock);
  std::string t;
  for (int i = 0; i < 200; ++i) t += "abcab";
  CheckSuffixArray(t, &dev);
}

TEST(SuffixArray, RandomTexts) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    std::string t;
    size_t len = 500 + rng.Uniform(2000);
    for (size_t i = 0; i < len; ++i) {
      t.push_back('a' + static_cast<char>(rng.Uniform(4)));
    }
    CheckSuffixArray(t, &dev);
  }
}

TEST(SuffixArray, EmptyAndSingle) {
  MemoryBlockDevice dev(kBlock);
  CheckSuffixArray("", &dev);
  CheckSuffixArray("z", &dev);
}

TEST(SuffixArray, RoundsAreLogarithmic) {
  MemoryBlockDevice dev(kBlock);
  std::string t;
  Rng rng(88);
  for (int i = 0; i < 8192; ++i) {
    t.push_back('a' + static_cast<char>(rng.Uniform(2)));
  }
  ExtVector<uint8_t> tv(&dev);
  ASSERT_TRUE(tv.AppendAll(reinterpret_cast<const uint8_t*>(t.data()),
                           t.size())
                  .ok());
  SuffixArrayBuilder builder(&dev, kMem);
  ExtVector<uint64_t> sa(&dev);
  ASSERT_TRUE(builder.Build(tv, &sa).ok());
  EXPECT_LE(builder.rounds(), 14u);  // ceil(log2 8192) = 13 (+1 slack)
}

}  // namespace
}  // namespace vem
