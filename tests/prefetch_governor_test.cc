// PrefetchGovernor unit tests: budget exhaustion and the grow / shrink /
// disarm policy, deterministic under a fake clock (the governor's only
// time source is injected, so stall detection is driven exactly).
// Also covers the external PQ's governor-less staging cap.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "io/io_engine.h"
#include "io/memory_block_device.h"
#include "io/prefetch_governor.h"
#include "search/external_pq.h"
#include "util/options.h"
#include "util/random.h"

namespace vem {
namespace {

/// Deterministic clock: tests advance it by hand.
struct FakeClock {
  std::atomic<uint64_t> now_ns{0};
  PrefetchGovernor::Clock fn() {
    return [this] { return now_ns.load(); };
  }
};

PrefetchGovernor::Config TestConfig() {
  PrefetchGovernor::Config cfg;
  cfg.budget_blocks = 64;
  cfg.min_depth = 2;
  cfg.max_depth = 16;
  cfg.initial_depth = 16;  // grant requests up front; the start-small
                           // policy has its own test below
  cfg.adapt_windows = 4;
  cfg.stall_floor_ns = 1000;
  cfg.waste_disarm_ewma = 0.5;
  cfg.probe_every = 3;
  return cfg;
}

TEST(PrefetchGovernor, FreshArmsStartConservativeAndEarnDepth) {
  FakeClock clk;
  auto cfg = TestConfig();
  cfg.initial_depth = 4;
  PrefetchGovernor gov(cfg, clk.fn());
  auto lease = gov.Arm(16);  // asks deep, starts shallow
  ASSERT_EQ(lease->depth(), 4u);
  // Stall evidence doubles depth past the initial cap up to the request.
  for (int period = 0; period < 2; ++period) {
    for (int w = 0; w < 4; ++w) {
      uint64_t t0 = lease->BeginWait();
      clk.now_ns += 5000;
      lease->EndWait(t0);
      lease->ReportWindow(lease->depth(), 0);
    }
  }
  EXPECT_EQ(lease->depth(), 16u);
}

TEST(PrefetchGovernor, GrantsClampedToDepthBounds) {
  FakeClock clk;
  PrefetchGovernor gov(TestConfig(), clk.fn());
  auto tiny = gov.Arm(1);   // below min_depth: raised to the floor
  EXPECT_EQ(tiny->depth(), 2u);
  auto huge = gov.Arm(100);  // above max_depth: clamped to the ceiling
  EXPECT_EQ(huge->depth(), 16u);
  EXPECT_EQ(gov.staged_blocks(), 2 * 2u + 2 * 16u);
}

TEST(PrefetchGovernor, BudgetExhaustionRefusesThenRecovers) {
  FakeClock clk;
  auto cfg = TestConfig();
  cfg.budget_blocks = 16;  // room for two depth-4 streams (2*4 each)
  PrefetchGovernor gov(cfg, clk.fn());

  auto a = gov.Arm(4);
  auto b = gov.Arm(4);
  EXPECT_EQ(a->depth(), 4u);
  EXPECT_EQ(b->depth(), 4u);
  EXPECT_EQ(gov.staged_blocks(), 16u);

  auto c = gov.Arm(4);  // budget exhausted: refused, runs synchronous
  EXPECT_EQ(c->depth(), 0u);
  EXPECT_FALSE(c->armed());
  EXPECT_EQ(gov.arms_refused(), 1u);

  a.reset();  // hand 8 blocks back
  EXPECT_EQ(gov.staged_blocks(), 8u);
  auto d = gov.Arm(4);
  EXPECT_EQ(d->depth(), 4u);
  EXPECT_EQ(gov.arms_granted(), 3u);
}

TEST(PrefetchGovernor, PartialGrantWhenHeadroomIsTight) {
  FakeClock clk;
  auto cfg = TestConfig();
  cfg.budget_blocks = 12;
  PrefetchGovernor gov(cfg, clk.fn());
  auto a = gov.Arm(4);  // stages 8, headroom 4 left
  ASSERT_EQ(a->depth(), 4u);
  auto b = gov.Arm(4);  // only 2 fits (2*2 <= 4): partial grant
  EXPECT_EQ(b->depth(), 2u);
  EXPECT_EQ(gov.staged_blocks(), 12u);
}

/// Scripted depth gauge: tests pin each route's headroom by hand.
struct FakeGauge : public DepthGauge {
  double headroom = 1.0;
  std::map<uint64_t, double> per_route;
  double RouteHeadroom(uint64_t route) const override {
    auto it = per_route.find(route);
    return it != per_route.end() ? it->second : headroom;
  }
};

TEST(PrefetchGovernor, ArmGrantsScaleWithRouteHeadroom) {
  FakeClock clk;
  FakeGauge gauge;
  auto cfg = TestConfig();
  cfg.budget_blocks = 256;  // ample: only the gauge shapes these grants
  PrefetchGovernor gov(cfg, clk.fn());
  gov.AttachGauge(&gauge);

  gauge.headroom = 1.0;  // idle engine: the full request
  auto full = gov.Arm(16);
  EXPECT_EQ(full->depth(), 16u);

  gauge.headroom = 0.5;  // half the submission headroom, half the grant
  auto half = gov.Arm(16);
  EXPECT_EQ(half->depth(), 8u);

  gauge.headroom = 0.0;  // saturated: floor, never refuse a fresh stream
  auto floored = gov.Arm(16);
  EXPECT_EQ(floored->depth(), 2u);

  // Per-route: one congested disk shapes only its own streams.
  gauge.headroom = 1.0;
  gauge.per_route[3] = 0.25;
  auto congested = gov.Arm(16, /*route=*/3);
  EXPECT_EQ(congested->depth(), 4u);
  auto other = gov.Arm(16, /*route=*/4);
  EXPECT_EQ(other->depth(), 16u);
}

TEST(PrefetchGovernor, DepthGrowsScaleWithRouteHeadroom) {
  FakeClock clk;
  FakeGauge gauge;
  PrefetchGovernor gov(TestConfig(), clk.fn());
  gov.AttachGauge(&gauge);
  auto grower = gov.Arm(4);
  ASSERT_EQ(grower->depth(), 4u);

  // Stalled period under half headroom: the doubling (4 -> 8) is shaped
  // to half its growth (4 -> 6).
  gauge.headroom = 0.5;
  for (int w = 0; w < 4; ++w) {
    uint64_t t0 = grower->BeginWait();
    clk.now_ns += 5000;
    grower->EndWait(t0);
    grower->ReportWindow(/*consumed=*/4, /*unused=*/0);
  }
  EXPECT_EQ(grower->depth(), 6u);
  EXPECT_EQ(gov.grow_decisions(), 1u);

  // Zero headroom: the grow is held outright and counted.
  gauge.headroom = 0.0;
  uint64_t skips_before = gov.saturation_skips();
  for (int w = 0; w < 4; ++w) {
    uint64_t t0 = grower->BeginWait();
    clk.now_ns += 5000;
    grower->EndWait(t0);
    grower->ReportWindow(/*consumed=*/6, /*unused=*/0);
  }
  EXPECT_EQ(grower->depth(), 6u);
  EXPECT_GT(gov.saturation_skips(), skips_before);

  // Headroom restored: the next stalled period grows again in full.
  gauge.headroom = 1.0;
  for (int w = 0; w < 4; ++w) {
    uint64_t t0 = grower->BeginWait();
    clk.now_ns += 5000;
    grower->EndWait(t0);
    grower->ReportWindow(/*consumed=*/6, /*unused=*/0);
  }
  EXPECT_EQ(grower->depth(), 12u);
}

TEST(PrefetchGovernor, GrowsOnConsumerStalls) {
  FakeClock clk;
  PrefetchGovernor gov(TestConfig(), clk.fn());
  auto lease = gov.Arm(4);
  ASSERT_EQ(lease->depth(), 4u);

  // Four windows, each with a wait longer than the stall floor: the
  // consumer keeps outrunning the fill, so depth doubles.
  for (int w = 0; w < 4; ++w) {
    uint64_t t0 = lease->BeginWait();
    clk.now_ns += 5000;  // > stall_floor_ns
    lease->EndWait(t0);
    lease->ReportWindow(/*consumed=*/4, /*unused=*/0);
  }
  EXPECT_EQ(lease->depth(), 8u);
  EXPECT_EQ(gov.grow_decisions(), 1u);
  EXPECT_EQ(gov.staged_blocks(), 16u);

  // Another stalled period: grows to the max_depth ceiling.
  for (int w = 0; w < 4; ++w) {
    uint64_t t0 = lease->BeginWait();
    clk.now_ns += 5000;
    lease->EndWait(t0);
    lease->ReportWindow(8, 0);
  }
  EXPECT_EQ(lease->depth(), 16u);

  // Stalls but the ceiling is reached: depth stays put.
  for (int w = 0; w < 4; ++w) {
    uint64_t t0 = lease->BeginWait();
    clk.now_ns += 5000;
    lease->EndWait(t0);
    lease->ReportWindow(16, 0);
  }
  EXPECT_EQ(lease->depth(), 16u);
}

TEST(PrefetchGovernor, SubFloorWaitsAreNotStalls) {
  FakeClock clk;
  PrefetchGovernor gov(TestConfig(), clk.fn());
  auto lease = gov.Arm(4);
  for (int w = 0; w < 8; ++w) {
    uint64_t t0 = lease->BeginWait();
    clk.now_ns += 100;  // well under the 1000ns floor
    lease->EndWait(t0);
    lease->ReportWindow(4, 0);
  }
  // Healthy stream, no budget pressure: depth untouched.
  EXPECT_EQ(lease->depth(), 4u);
  EXPECT_EQ(gov.grow_decisions(), 0u);
  EXPECT_EQ(gov.shrink_decisions(), 0u);
}

TEST(PrefetchGovernor, WastedStagingShrinksThenDisarms) {
  FakeClock clk;
  PrefetchGovernor gov(TestConfig(), clk.fn());
  auto lease = gov.Arm(4);
  ASSERT_EQ(lease->depth(), 4u);

  // Most staged blocks dropped unused: halve to the floor...
  for (int w = 0; w < 4; ++w) lease->ReportWindow(1, 3);
  EXPECT_EQ(lease->depth(), 2u);
  EXPECT_EQ(gov.shrink_decisions(), 1u);
  EXPECT_EQ(gov.staged_blocks(), 4u);

  // ...and a second wasteful period disarms and releases the budget.
  for (int w = 0; w < 4; ++w) lease->ReportWindow(0, 2);
  EXPECT_EQ(lease->depth(), 0u);
  EXPECT_FALSE(lease->armed());
  EXPECT_EQ(gov.disarm_decisions(), 1u);
  EXPECT_EQ(gov.staged_blocks(), 0u);
}

TEST(PrefetchGovernor, BudgetPressureShedsIdleDepth) {
  FakeClock clk;
  auto cfg = TestConfig();
  cfg.budget_blocks = 16;
  PrefetchGovernor gov(cfg, clk.fn());
  auto lease = gov.Arm(8);
  ASSERT_EQ(lease->depth(), 8u);
  ASSERT_EQ(gov.staged_blocks(), 16u);  // the whole budget

  // Never stalls while the budget is saturated: shed half, keep >= min.
  for (int w = 0; w < 4; ++w) lease->ReportWindow(8, 0);
  EXPECT_EQ(lease->depth(), 4u);
  EXPECT_EQ(gov.staged_blocks(), 8u);

  // Pressure is gone now (8 of 16 staged): depth holds.
  for (int w = 0; w < 4; ++w) lease->ReportWindow(4, 0);
  EXPECT_EQ(lease->depth(), 4u);
}

TEST(PrefetchGovernor, WasteHistoryRefusesFreshArmsWithProbe) {
  FakeClock clk;
  PrefetchGovernor gov(TestConfig(), clk.fn());
  {
    // A short-lived stream that threw all its staging away (the BFS
    // frontier shape); its close folds waste=1.0 into the EWMA.
    auto wasteful = gov.Arm(8);
    wasteful->ReportWindow(0, 8);
  }
  EXPECT_GT(gov.waste_ewma(), 0.5);

  // Fresh arms are refused while history says waste...
  auto a = gov.Arm(8);
  auto b = gov.Arm(8);
  EXPECT_EQ(a->depth(), 0u);
  EXPECT_EQ(b->depth(), 0u);
  // ...except every probe_every-th (3rd) one, granted min_depth so the
  // governor keeps sampling for a phase change.
  auto probe = gov.Arm(8);
  EXPECT_EQ(probe->depth(), 2u);

  // A healthy probe washes the history out and full grants resume.
  for (int w = 0; w < 8; ++w) probe->ReportWindow(2, 0);
  probe.reset();
  EXPECT_LT(gov.waste_ewma(), 0.5);
  auto back = gov.Arm(8);
  EXPECT_EQ(back->depth(), 8u);
}

TEST(PrefetchGovernor, EngineAdvisoryFollowsStallEvidence) {
  FakeClock clk;
  auto cfg = TestConfig();
  cfg.engine_off_periods = 2;
  PrefetchGovernor gov(cfg, clk.fn());
  auto lease = gov.Arm(4);
  EXPECT_TRUE(lease->use_engine());

  // Two clean periods: background fills are pure overhead, go inline.
  for (int w = 0; w < 8; ++w) lease->ReportWindow(4, 0);
  EXPECT_FALSE(lease->use_engine());

  // One stalled period (e.g. an inline fill ran at device latency, 4
  // blocks each over the per-block floor): engine back on immediately.
  for (int w = 0; w < 4; ++w) {
    uint64_t t0 = lease->BeginWait();
    clk.now_ns += 4 * 5000;
    lease->EndWait(t0, /*blocks=*/4);
    lease->ReportWindow(4, 0);
  }
  EXPECT_TRUE(lease->use_engine());

  // Per-block scaling: the same total wait spread over many blocks is a
  // cheap inline fill, not a stall.
  for (int w = 0; w < 8; ++w) {
    uint64_t t0 = lease->BeginWait();
    clk.now_ns += 4 * 500;  // 500ns/block, under the 1000ns floor
    lease->EndWait(t0, /*blocks=*/4);
    lease->ReportWindow(4, 0);
  }
  EXPECT_FALSE(lease->use_engine());
}

TEST(PrefetchGovernor, ConfigFromOptionsDerivesBudgetAgainstM) {
  Options opts;
  opts.block_size = 4096;
  opts.memory_budget = 1u << 20;  // 1 MiB
  auto cfg = PrefetchGovernor::ConfigFromOptions(opts);
  EXPECT_EQ(cfg.budget_blocks, (1u << 19) / 4096);  // M/2 in blocks
  EXPECT_EQ(cfg.max_depth, cfg.budget_blocks / 4);  // <= half the budget armed

  opts.prefetch_budget_bytes = 1u << 19;
  auto explicit_cfg = PrefetchGovernor::ConfigFromOptions(opts);
  EXPECT_EQ(explicit_cfg.budget_blocks, (1u << 19) / 4096);
}

// ------------------------------------------- PQ staging cap (no governor)

TEST(PrefetchGovernor, ExternalPqBoundsStagingWithoutGovernor) {
  MemoryBlockDevice dev(256);
  ExternalPriorityQueue<uint64_t> pq(&dev, 4096);
  pq.set_prefetch_depth(4);  // requests 2*4 = 8 staged blocks per run
  Rng rng(99);
  for (size_t i = 0; i < 30000; ++i) {
    ASSERT_TRUE(pq.Push(rng.Next()).ok());
    // Invariant at every step: armed staging never exceeds the budget,
    // no matter how many runs are live.
    ASSERT_LE(pq.armed_staging_blocks(), pq.staging_budget_blocks());
  }
  EXPECT_GT(pq.spills(), 0u);
  uint64_t prev = 0, v = 0;
  bool first = true;
  while (!pq.empty()) {
    ASSERT_TRUE(pq.Pop(&v).ok());
    ASSERT_LE(pq.armed_staging_blocks(), pq.staging_budget_blocks());
    if (!first) {
      ASSERT_GE(v, prev);
    }
    prev = v;
    first = false;
  }
}

}  // namespace
}  // namespace vem
