// Tests for relational operators: sort-merge join and group-by.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/relational.h"
#include "io/memory_block_device.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 256;
constexpr size_t kMem = 4096;

struct OrderRow {
  uint64_t order_id;
  uint64_t cust;
};
struct CustRow {
  uint64_t cust;
  uint32_t region;
};
struct JoinedRow {
  uint64_t order_id;
  uint64_t cust;
  uint32_t region;
  bool operator<(const JoinedRow& o) const {
    if (order_id != o.order_id) return order_id < o.order_id;
    if (cust != o.cust) return cust < o.cust;
    return region < o.region;
  }
  bool operator==(const JoinedRow&) const = default;
};

TEST(SortMergeJoin, ManyToOne) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(1);
  const size_t kOrders = 20000, kCust = 500;
  std::vector<OrderRow> orders;
  std::vector<CustRow> custs;
  for (size_t i = 0; i < kOrders; ++i) {
    orders.push_back({i, rng.Uniform(kCust * 2)});  // half dangle
  }
  for (uint64_t c = 0; c < kCust; ++c) {
    custs.push_back({c, static_cast<uint32_t>(c % 5)});
  }
  std::vector<JoinedRow> expect;
  for (const auto& o : orders) {
    if (o.cust < kCust) {
      expect.push_back({o.order_id, o.cust, static_cast<uint32_t>(o.cust % 5)});
    }
  }
  std::sort(expect.begin(), expect.end());

  ExtVector<OrderRow> ov(&dev);
  ExtVector<CustRow> cv(&dev);
  ASSERT_TRUE(ov.AppendAll(orders.data(), orders.size()).ok());
  ASSERT_TRUE(cv.AppendAll(custs.data(), custs.size()).ok());
  ExtVector<JoinedRow> out(&dev);
  Status s = SortMergeJoin<OrderRow, CustRow, JoinedRow, uint64_t>(
      ov, cv, &out, kMem,
      [](const OrderRow& o) { return o.cust; },
      [](const CustRow& c) { return c.cust; },
      [](const OrderRow& o, const CustRow& c) {
        return JoinedRow{o.order_id, o.cust, c.region};
      });
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::vector<JoinedRow> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

TEST(SortMergeJoin, ManyToManyCrossProductPerKey) {
  MemoryBlockDevice dev(kBlock);
  // Keys with multiplicities: left {k:2, j:1}, right {k:3, m:2}.
  std::vector<OrderRow> left = {{1, 7}, {2, 7}, {3, 9}};
  std::vector<CustRow> right = {{7, 70}, {7, 71}, {7, 72}, {8, 80}, {8, 81}};
  ExtVector<OrderRow> lv(&dev);
  ExtVector<CustRow> rv(&dev);
  ASSERT_TRUE(lv.AppendAll(left.data(), left.size()).ok());
  ASSERT_TRUE(rv.AppendAll(right.data(), right.size()).ok());
  ExtVector<JoinedRow> out(&dev);
  Status s = SortMergeJoin<OrderRow, CustRow, JoinedRow, uint64_t>(
      lv, rv, &out, kMem,
      [](const OrderRow& o) { return o.cust; },
      [](const CustRow& c) { return c.cust; },
      [](const OrderRow& o, const CustRow& c) {
        return JoinedRow{o.order_id, o.cust, c.region};
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(out.size(), 6u);  // 2 left rows x 3 right rows for key 7
}

TEST(SortMergeJoin, EmptySides) {
  MemoryBlockDevice dev(kBlock);
  ExtVector<OrderRow> lv(&dev);
  ExtVector<CustRow> rv(&dev);
  std::vector<CustRow> right = {{7, 70}};
  ASSERT_TRUE(rv.AppendAll(right.data(), right.size()).ok());
  ExtVector<JoinedRow> out(&dev);
  Status s = SortMergeJoin<OrderRow, CustRow, JoinedRow, uint64_t>(
      lv, rv, &out, kMem,
      [](const OrderRow& o) { return o.cust; },
      [](const CustRow& c) { return c.cust; },
      [](const OrderRow& o, const CustRow& c) {
        return JoinedRow{o.order_id, o.cust, c.region};
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(out.size(), 0u);
}

struct SaleRow {
  uint32_t region;
  double amount;
};
struct RegionStat {
  uint32_t region;
  uint64_t count;
  double total;
};

TEST(GroupByAggregate, SumAndCountPerKey) {
  MemoryBlockDevice dev(kBlock);
  Rng rng(2);
  std::vector<SaleRow> sales;
  std::map<uint32_t, std::pair<uint64_t, double>> expect;
  for (int i = 0; i < 30000; ++i) {
    uint32_t region = static_cast<uint32_t>(rng.Uniform(17));
    double amount = std::floor(rng.NextDouble() * 100) / 4;
    sales.push_back({region, amount});
    expect[region].first++;
    expect[region].second += amount;
  }
  ExtVector<SaleRow> sv(&dev);
  ASSERT_TRUE(sv.AppendAll(sales.data(), sales.size()).ok());
  ExtVector<RegionStat> out(&dev);
  struct Acc {
    uint64_t count;
    double total;
  };
  Status s = GroupByAggregate<SaleRow, uint32_t, Acc, RegionStat>(
      sv, &out, kMem,
      [](const SaleRow& r) { return r.region; },
      [](const uint32_t&) { return Acc{0, 0.0}; },
      [](Acc* a, const SaleRow& r) {
        a->count++;
        a->total += r.amount;
      },
      [](const uint32_t& k, const Acc& a) {
        return RegionStat{k, a.count, a.total};
      });
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::vector<RegionStat> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), expect.size());
  for (const auto& rs : got) {
    auto it = expect.find(rs.region);
    ASSERT_NE(it, expect.end());
    EXPECT_EQ(rs.count, it->second.first);
    EXPECT_DOUBLE_EQ(rs.total, it->second.second);
  }
  // Output is in key order (sorted group-by invariant).
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].region, got[i].region);
  }
}

TEST(GroupByAggregate, SingleKeyAndEmpty) {
  MemoryBlockDevice dev(kBlock);
  ExtVector<SaleRow> empty(&dev);
  ExtVector<RegionStat> out(&dev);
  struct Acc {
    uint64_t c;
  };
  auto run = [&](const ExtVector<SaleRow>& in, ExtVector<RegionStat>* o) {
    return GroupByAggregate<SaleRow, uint32_t, Acc, RegionStat>(
        in, o, kMem, [](const SaleRow& r) { return r.region; },
        [](const uint32_t&) { return Acc{0}; },
        [](Acc* a, const SaleRow&) { a->c++; },
        [](const uint32_t& k, const Acc& a) {
          return RegionStat{k, a.c, 0};
        });
  };
  ASSERT_TRUE(run(empty, &out).ok());
  EXPECT_EQ(out.size(), 0u);
  ExtVector<SaleRow> one(&dev);
  std::vector<SaleRow> rows(100, SaleRow{5, 1.0});
  ASSERT_TRUE(one.AppendAll(rows.data(), rows.size()).ok());
  ExtVector<RegionStat> out2(&dev);
  ASSERT_TRUE(run(one, &out2).ok());
  ASSERT_EQ(out2.size(), 1u);
  std::vector<RegionStat> got;
  ASSERT_TRUE(out2.ReadAll(&got).ok());
  EXPECT_EQ(got[0].region, 5u);
  EXPECT_EQ(got[0].count, 100u);
}

}  // namespace
}  // namespace vem
