// Tests for the out-of-core six-step FFT.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "io/memory_block_device.h"
#include "sort/fft.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlock = 512;  // 32 Complex per block

// Reference O(N^2) DFT.
std::vector<Complex> NaiveDft(const std::vector<Complex>& x, bool inverse) {
  const size_t n = x.size();
  std::vector<Complex> out(n);
  for (size_t k = 0; k < n; ++k) {
    Complex acc{0, 0};
    for (size_t i = 0; i < n; ++i) {
      double angle = 2.0 * std::numbers::pi * static_cast<double>(i * k % n) /
                     static_cast<double>(n);
      if (!inverse) angle = -angle;
      acc = acc + x[i] * Complex{std::cos(angle), std::sin(angle)};
    }
    if (inverse) {
      acc.re /= static_cast<double>(n);
      acc.im /= static_cast<double>(n);
    }
    out[k] = acc;
  }
  return out;
}

void ExpectClose(const std::vector<Complex>& a, const std::vector<Complex>& b,
                 double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i].re, b[i].re, tol) << "re at " << i;
    ASSERT_NEAR(a[i].im, b[i].im, tol) << "im at " << i;
  }
}

std::vector<Complex> RandomSignal(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& c : x) {
    c.re = rng.NextDouble() * 2 - 1;
    c.im = rng.NextDouble() * 2 - 1;
  }
  return x;
}

class FftSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(FftSweep, MatchesNaiveDft) {
  const size_t n = GetParam();
  MemoryBlockDevice dev(kBlock);
  auto x = RandomSignal(n, n);
  auto expect = NaiveDft(x, false);
  ExtVector<Complex> in(&dev), out(&dev);
  ASSERT_TRUE(in.AppendAll(x.data(), x.size()).ok());
  ExternalFft fft(&dev, 4096);  // 256 Complex of memory; external for n>256
  ASSERT_TRUE(fft.Forward(in, &out).ok());
  std::vector<Complex> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ExpectClose(got, expect, 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSweep,
                         ::testing::Values(1, 2, 8, 64, 256, 512, 1024, 4096));

TEST(ExternalFft, RoundTripLargeSignal) {
  const size_t n = 1 << 16;  // well beyond the 4 KiB memory budget
  MemoryBlockDevice dev(kBlock);
  auto x = RandomSignal(n, 9);
  ExtVector<Complex> in(&dev), freq(&dev), back(&dev);
  ASSERT_TRUE(in.AppendAll(x.data(), x.size()).ok());
  ExternalFft fft(&dev, 8192);
  ASSERT_TRUE(fft.Forward(in, &freq).ok());
  ASSERT_TRUE(fft.Inverse(freq, &back).ok());
  std::vector<Complex> got;
  ASSERT_TRUE(back.ReadAll(&got).ok());
  ExpectClose(got, x, 1e-9 * n);
}

TEST(ExternalFft, ImpulseGivesFlatSpectrum) {
  const size_t n = 1 << 12;
  MemoryBlockDevice dev(kBlock);
  std::vector<Complex> x(n);
  x[0] = {1, 0};
  ExtVector<Complex> in(&dev), out(&dev);
  ASSERT_TRUE(in.AppendAll(x.data(), x.size()).ok());
  ExternalFft fft(&dev, 4096);
  ASSERT_TRUE(fft.Forward(in, &out).ok());
  std::vector<Complex> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  for (size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(got[k].re, 1.0, 1e-9);
    ASSERT_NEAR(got[k].im, 0.0, 1e-9);
  }
}

TEST(ExternalFft, PureToneGivesSingleBin) {
  const size_t n = 1 << 12;
  const size_t bin = 37;
  MemoryBlockDevice dev(kBlock);
  std::vector<Complex> x(n);
  for (size_t i = 0; i < n; ++i) {
    double angle = 2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                   static_cast<double>(n);
    x[i] = {std::cos(angle), std::sin(angle)};
  }
  ExtVector<Complex> in(&dev), out(&dev);
  ASSERT_TRUE(in.AppendAll(x.data(), x.size()).ok());
  ExternalFft fft(&dev, 4096);
  ASSERT_TRUE(fft.Forward(in, &out).ok());
  std::vector<Complex> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  for (size_t k = 0; k < n; ++k) {
    double expect = (k == bin) ? static_cast<double>(n) : 0.0;
    ASSERT_NEAR(got[k].re, expect, 1e-6) << "bin " << k;
    ASSERT_NEAR(got[k].im, 0.0, 1e-6) << "bin " << k;
  }
}

TEST(ExternalFft, RejectsNonPowerOfTwo) {
  MemoryBlockDevice dev(kBlock);
  std::vector<Complex> x(100);
  ExtVector<Complex> in(&dev), out(&dev);
  ASSERT_TRUE(in.AppendAll(x.data(), x.size()).ok());
  ExternalFft fft(&dev, 4096);
  EXPECT_TRUE(fft.Forward(in, &out).IsInvalidArgument());
}

TEST(ExternalFft, AgreesWithPagedBaseline) {
  const size_t n = 1 << 12;
  MemoryBlockDevice dev(kBlock);
  BufferPool pool(&dev, 16);
  auto x = RandomSignal(n, 13);
  ExtVector<Complex> in(&dev), out(&dev);
  ASSERT_TRUE(in.AppendAll(x.data(), x.size()).ok());
  ExternalFft fft(&dev, 4096);
  ASSERT_TRUE(fft.Forward(in, &out).ok());

  ExtVector<Complex> paged(&dev, &pool);
  ASSERT_TRUE(paged.AppendAll(x.data(), x.size()).ok());
  ASSERT_TRUE(FftPagedBaseline(&paged, false).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<Complex> a, b;
  ASSERT_TRUE(out.ReadAll(&a).ok());
  ASSERT_TRUE(paged.ReadAll(&b).ok());
  ExpectClose(a, b, 1e-8 * n);
}

TEST(ExternalFft, SixStepIoIsScanBounded) {
  // The whole six-step pipeline is a constant number of Θ(N/B) passes.
  const size_t n = 1 << 16;
  MemoryBlockDevice dev(kBlock);
  auto x = RandomSignal(n, 21);
  ExtVector<Complex> in(&dev), out(&dev);
  ASSERT_TRUE(in.AppendAll(x.data(), x.size()).ok());
  const size_t kB = kBlock / sizeof(Complex);
  ExternalFft fft(&dev, 64 * 1024);  // M >= B^2 regime for the transposes
  IoProbe probe(dev);
  ASSERT_TRUE(fft.Forward(in, &out).ok());
  uint64_t ios = probe.delta().block_ios();
  EXPECT_LT(ios, 30 * n / kB) << "not scan-bounded";
}

}  // namespace
}  // namespace vem
