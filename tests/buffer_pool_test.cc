// BufferPool eviction/accounting tests: hit/miss/dirty-writeback
// counters across Resize grow/shrink, Evict-while-cached, the
// deterministic all-pinned Busy path, and the arbitrated-mode ghost
// charging contract (pool resizes never change device IoStats for the
// same access sequence).
#include <gtest/gtest.h>

#include <vector>

#include "io/buffer_pool.h"
#include "io/memory_arbiter.h"
#include "io/memory_block_device.h"

namespace vem {
namespace {

MemoryArbiter::Config RoomyConfig() {
  MemoryArbiter::Config cfg;
  cfg.budget_bytes = 64 * 64;  // 64 blocks of 64 bytes
  cfg.block_size = 64;
  cfg.window_accesses = 4;
  return cfg;
}

TEST(BufferPoolAccounting, HitMissWritebackCounters) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 2);
  std::vector<uint64_t> ids(4);
  char* d;
  for (auto& id : ids) {
    ASSERT_TRUE(pool.PinNew(&id, &d).ok());
    d[0] = 'x';
    pool.Unpin(id, /*dirty=*/true);
  }
  // 4 new pages through 2 frames: the 3rd and 4th PinNew each evicted a
  // dirty page.
  EXPECT_EQ(pool.writebacks(), 2u);
  EXPECT_EQ(pool.hits(), 0u);
  // Re-pin the last two (cached) and the first two (evicted).
  ASSERT_TRUE(pool.Pin(ids[3], &d).ok());
  pool.Unpin(ids[3], false);
  ASSERT_TRUE(pool.Pin(ids[2], &d).ok());
  pool.Unpin(ids[2], false);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 0u);
  ASSERT_TRUE(pool.Pin(ids[0], &d).ok());
  pool.Unpin(ids[0], false);
  EXPECT_EQ(pool.misses(), 1u);
  // Dirty pages remaining get written by FlushAll and counted.
  uint64_t wb = pool.writebacks();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_GE(pool.writebacks(), wb);
}

TEST(BufferPoolAccounting, EvictWhileCachedDropsWithoutWriteback) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 4);
  uint64_t id;
  char* d;
  ASSERT_TRUE(pool.PinNew(&id, &d).ok());
  d[0] = 'z';
  pool.Unpin(id, /*dirty=*/true);
  ASSERT_TRUE(pool.FlushAll().ok());  // 'z' reaches the device
  uint64_t wb_flush = pool.writebacks();
  // Dirty it again, then Evict: the new value is dropped, not written.
  ASSERT_TRUE(pool.Pin(id, &d).ok());
  d[0] = 'q';
  pool.Unpin(id, /*dirty=*/true);
  uint64_t writes_before = dev.stats().block_writes;
  pool.Evict(id);  // deallocation path: no write-back
  EXPECT_EQ(pool.writebacks(), wb_flush);
  EXPECT_EQ(dev.stats().block_writes, writes_before);
  // The page is gone from the cache: a fresh Pin is a miss (and a read)
  // and sees the flushed value, not the evicted one.
  uint64_t reads_before = dev.stats().block_reads;
  uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.Pin(id, &d).ok());
  EXPECT_EQ(d[0], 'z');
  pool.Unpin(id, false);
  EXPECT_EQ(pool.misses(), misses_before + 1);
  EXPECT_EQ(dev.stats().block_reads, reads_before + 1);
}

TEST(BufferPoolAccounting, AllPinnedBusyIsDeterministic) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 3);
  uint64_t ids[3];
  char* d;
  for (auto& id : ids) ASSERT_TRUE(pool.PinNew(&id, &d).ok());
  // Every frame pinned: Pin and PinNew fail Busy, again and again (no
  // unbounded sweep, no state damage).
  uint64_t extra;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(pool.PinNew(&extra, &d).IsBusy());
    EXPECT_TRUE(pool.Pin(12345, &d).IsBusy());
  }
  // Releasing one pin makes exactly that frame reclaimable.
  pool.Unpin(ids[1], false);
  EXPECT_TRUE(pool.PinNew(&extra, &d).ok());
}

TEST(BufferPoolAccounting, ResizeGrowKeepsCachedPagesShrinkWritesBack) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 4);
  std::vector<uint64_t> ids(4);
  char* d;
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.PinNew(&ids[i], &d).ok());
    d[0] = static_cast<char>('a' + i);
    pool.Unpin(ids[i], /*dirty=*/true);
  }
  ASSERT_TRUE(pool.Resize(8).ok());
  EXPECT_EQ(pool.num_frames(), 8u);
  // Growth evicted nothing: all four pages still hit.
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Pin(ids[i], &d).ok());
    EXPECT_EQ(d[0], 'a' + static_cast<char>(i));
    pool.Unpin(ids[i], false);
  }
  EXPECT_EQ(pool.hits(), 4u);
  // Shrink below the cached set: dirty victims are written back.
  ASSERT_TRUE(pool.Resize(2).ok());
  EXPECT_EQ(pool.num_frames(), 2u);
  EXPECT_GE(pool.writebacks(), 2u);
  // Evicted content must have reached the device.
  char buf[64];
  ASSERT_TRUE(dev.Read(ids[0], buf).ok());
  EXPECT_EQ(buf[0], 'a');
  // Shrinking below the pinned set stops at the pins and reports Busy.
  ASSERT_TRUE(pool.Pin(ids[0], &d).ok());
  ASSERT_TRUE(pool.Pin(ids[1], &d).ok());
  EXPECT_TRUE(pool.Resize(1).IsBusy());
  EXPECT_EQ(pool.num_frames(), 2u);
  pool.Unpin(ids[0], false);
  pool.Unpin(ids[1], false);
}

TEST(BufferPoolAccounting, ShedDropsOnlyCleanUnpinnedFrames) {
  MemoryBlockDevice dev(64);
  BufferPool pool(&dev, 6);
  uint64_t pinned_id, dirty_id;
  std::vector<uint64_t> clean(3);
  char* d;
  ASSERT_TRUE(pool.PinNew(&pinned_id, &d).ok());  // stays pinned
  ASSERT_TRUE(pool.PinNew(&dirty_id, &d).ok());
  pool.Unpin(dirty_id, /*dirty=*/true);
  for (auto& id : clean) {
    ASSERT_TRUE(pool.PinNew(&id, &d).ok());
    pool.Unpin(id, false);
  }
  ASSERT_TRUE(pool.FlushAll().ok());  // clean[] and dirty_id now clean
  // Re-dirty one page.
  ASSERT_TRUE(pool.Pin(dirty_id, &d).ok());
  pool.Unpin(dirty_id, /*dirty=*/true);
  uint64_t writes_before = dev.stats().block_writes;
  // 6 frames: 1 pinned, 1 dirty, 3 clean cached, 1 never used. Shedding
  // "everything" may drop at most the invalid + clean unpinned four.
  size_t shed = pool.Shed(100);
  EXPECT_EQ(shed, 4u);
  EXPECT_EQ(pool.num_frames(), 2u);
  EXPECT_EQ(dev.stats().block_writes, writes_before);  // shed does no I/O
  // The pinned page and the dirty page survived.
  ASSERT_TRUE(pool.Pin(dirty_id, &d).ok());
  EXPECT_EQ(pool.misses(), 0u);
  pool.Unpin(dirty_id, false);
}

// The arbitrated-mode contract: resizing the physical pool NEVER moves
// IoStats — charges follow the fixed baseline-capacity ghost, transfers
// ride the uncounted plane. Run the same access sequence twice, once
// with aggressive mid-sequence resizes, and compare counters exactly.
TEST(BufferPoolAccounting, ArbitratedResizeKeepsIoStatsIdentical) {
  auto run = [](bool resize) {
    MemoryBlockDevice dev(64);
    MemoryArbiter arb(RoomyConfig());
    BufferPool pool(&dev, 4, &arb);
    EXPECT_TRUE(pool.arbitrated());
    std::vector<uint64_t> ids(12);
    char* d;
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_TRUE(pool.PinNew(&ids[i], &d).ok());
      d[0] = static_cast<char>(i);
      pool.Unpin(ids[i], /*dirty=*/true);
      if (resize && i == 4) {
        EXPECT_TRUE(pool.Resize(10).ok());
      }
    }
    // Strided revisits with dirtying, across grow and shrink phases.
    for (size_t round = 0; round < 3; ++round) {
      if (resize && round == 1) {
        EXPECT_TRUE(pool.Resize(2).ok());
      }
      if (resize && round == 2) {
        EXPECT_TRUE(pool.Resize(8).ok());
      }
      for (size_t i = 0; i < ids.size(); i += 2) {
        EXPECT_TRUE(pool.Pin(ids[i], &d).ok());
        EXPECT_EQ(d[0], static_cast<char>(i));
        pool.Unpin(ids[i], round == 0);
      }
    }
    EXPECT_TRUE(pool.FlushAll().ok());
    return dev.stats();
  };
  IoStats fixed = run(/*resize=*/false);
  IoStats resized = run(/*resize=*/true);
  EXPECT_EQ(fixed, resized);
}

// Arbitrated vs classic fixed pool: same sequence, bit-identical stats,
// even while the arbitrated pool physically grows past its baseline.
TEST(BufferPoolAccounting, ArbitratedMatchesFixedPoolCharges) {
  const size_t kBaseline = 4;
  auto run = [&](bool arbitrated) {
    MemoryBlockDevice dev(64);
    MemoryArbiter arb(RoomyConfig());
    BufferPool pool(&dev, kBaseline, arbitrated ? &arb : nullptr);
    std::vector<uint64_t> ids(10);
    char* d;
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_TRUE(pool.PinNew(&ids[i], &d).ok());
      d[0] = static_cast<char>('A' + i);
      pool.Unpin(ids[i], /*dirty=*/true);
    }
    // A working set larger than the baseline, revisited enough times
    // that the arbitrated pool earns growth (miss evidence) and serves
    // later rounds from frames the fixed pool does not have.
    for (size_t round = 0; round < 6; ++round) {
      for (size_t i = 0; i < ids.size(); ++i) {
        EXPECT_TRUE(pool.Pin(ids[i], &d).ok());
        EXPECT_EQ(d[0], static_cast<char>('A' + i));
        pool.Unpin(ids[i], false);
      }
    }
    EXPECT_TRUE(pool.FlushAll().ok());
    if (arbitrated) {
      // The point of the exercise: arbitration physically moved memory.
      EXPECT_GT(pool.num_frames(), kBaseline);
    }
    return dev.stats();
  };
  IoStats fixed = run(false);
  IoStats arbitrated = run(true);
  EXPECT_EQ(fixed, arbitrated);
}

TEST(BufferPoolAccounting, TryGrowBoundedByLeaseTarget) {
  MemoryBlockDevice dev(64);
  // Standalone: TryGrow always grows.
  BufferPool fixed(&dev, 2);
  EXPECT_EQ(fixed.TryGrow(3), 3u);
  EXPECT_EQ(fixed.num_frames(), 5u);
  // Arbitrated with the whole M already charged: no headroom, target
  // stays at the grant, TryGrow cannot exceed it.
  MemoryArbiter::Config tight = RoomyConfig();
  tight.budget_bytes = 8 * 64;  // 8 blocks total (the arbiter's minimum)
  MemoryArbiter arb(tight);
  BufferPool pool(&dev, 8, &arb);
  EXPECT_EQ(arb.free_blocks(), 0u);
  EXPECT_EQ(pool.TryGrow(2), 0u);
  EXPECT_EQ(pool.num_frames(), 8u);
}

}  // namespace
}  // namespace vem
