// Tests for ExtVector / ExtStack / ExtQueue: correctness + I/O complexity.
#include <gtest/gtest.h>

#include <vector>

#include "core/ext_queue.h"
#include "core/ext_stack.h"
#include "core/ext_vector.h"
#include "io/memory_block_device.h"
#include "util/random.h"

namespace vem {
namespace {

constexpr size_t kBlockBytes = 256;  // 32 uint64 per block

TEST(ExtVector, WriteThenReadBack) {
  MemoryBlockDevice dev(kBlockBytes);
  ExtVector<uint64_t> vec(&dev);
  std::vector<uint64_t> ref;
  ExtVector<uint64_t>::Writer w(&vec);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(w.Append(i * 3));
    ref.push_back(i * 3);
  }
  ASSERT_TRUE(w.Finish().ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(vec.ReadAll(&got).ok());
  EXPECT_EQ(got, ref);
}

TEST(ExtVector, ScanCostIsNOverB) {
  MemoryBlockDevice dev(kBlockBytes);
  const size_t kB = kBlockBytes / sizeof(uint64_t);
  const size_t kN = 10000;
  ExtVector<uint64_t> vec(&dev);
  IoProbe wprobe(dev);
  ExtVector<uint64_t>::Writer w(&vec);
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(w.Append(i));
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(wprobe.delta().block_writes, (kN + kB - 1) / kB);

  IoProbe rprobe(dev);
  std::vector<uint64_t> got;
  ASSERT_TRUE(vec.ReadAll(&got).ok());
  EXPECT_EQ(rprobe.delta().block_reads, (kN + kB - 1) / kB);
  EXPECT_EQ(got.size(), kN);
}

TEST(ExtVector, AppendAfterPartialBlock) {
  MemoryBlockDevice dev(kBlockBytes);
  ExtVector<uint64_t> vec(&dev);
  ASSERT_TRUE(vec.AppendAll(std::vector<uint64_t>{1, 2, 3}.data(), 3).ok());
  ASSERT_TRUE(vec.AppendAll(std::vector<uint64_t>{4, 5}.data(), 2).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(vec.ReadAll(&got).ok());
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(ExtVector, RandomAccessThroughPool) {
  MemoryBlockDevice dev(kBlockBytes);
  BufferPool pool(&dev, 4);
  ExtVector<uint64_t> vec(&dev, &pool);
  std::vector<uint64_t> ref(500);
  for (size_t i = 0; i < ref.size(); ++i) ref[i] = i * 7 + 1;
  ASSERT_TRUE(vec.AppendAll(ref.data(), ref.size()).ok());

  Rng rng(99);
  for (int t = 0; t < 300; ++t) {
    size_t i = rng.Uniform(ref.size());
    uint64_t v;
    ASSERT_TRUE(vec.Get(i, &v).ok());
    EXPECT_EQ(v, ref[i]);
    if (t % 3 == 0) {
      ref[i] = rng.Next();
      ASSERT_TRUE(vec.Set(i, ref[i]).ok());
    }
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(vec.ReadAll(&got).ok());
  EXPECT_EQ(got, ref);
}

TEST(ExtVector, GetOutOfRange) {
  MemoryBlockDevice dev(kBlockBytes);
  BufferPool pool(&dev, 2);
  ExtVector<uint64_t> vec(&dev, &pool);
  uint64_t v;
  EXPECT_TRUE(vec.Get(0, &v).IsInvalidArgument());
}

TEST(ExtVector, DestroyFreesBlocks) {
  MemoryBlockDevice dev(kBlockBytes);
  {
    ExtVector<uint64_t> vec(&dev);
    std::vector<uint64_t> data(1000, 42);
    ASSERT_TRUE(vec.AppendAll(data.data(), data.size()).ok());
    EXPECT_GT(dev.num_allocated(), 0u);
  }
  EXPECT_EQ(dev.num_allocated(), 0u);
}

TEST(ExtVector, MoveTransfersOwnership) {
  MemoryBlockDevice dev(kBlockBytes);
  ExtVector<uint64_t> a(&dev);
  std::vector<uint64_t> data{1, 2, 3, 4};
  ASSERT_TRUE(a.AppendAll(data.data(), data.size()).ok());
  ExtVector<uint64_t> b(std::move(a));
  EXPECT_EQ(a.size(), 0u);
  std::vector<uint64_t> got;
  ASSERT_TRUE(b.ReadAll(&got).ok());
  EXPECT_EQ(got, data);
}

struct Point3 {
  double x, y, z;
  bool operator==(const Point3&) const = default;
};

TEST(ExtVector, NonPowerOfTwoItemSize) {
  MemoryBlockDevice dev(100);  // 100 / 24 = 4 items per block, 4 wasted bytes
  ExtVector<Point3> vec(&dev);
  EXPECT_EQ(vec.items_per_block(), 4u);
  std::vector<Point3> ref;
  ExtVector<Point3>::Writer w(&vec);
  for (int i = 0; i < 37; ++i) {
    Point3 p{i * 1.0, i * 2.0, i * 3.0};
    ref.push_back(p);
    ASSERT_TRUE(w.Append(p));
  }
  ASSERT_TRUE(w.Finish().ok());
  std::vector<Point3> got;
  ASSERT_TRUE(vec.ReadAll(&got).ok());
  EXPECT_EQ(got, ref);
}

// ------------------------------------------------------------------- Stack

TEST(ExtStack, LifoOrder) {
  MemoryBlockDevice dev(kBlockBytes);
  ExtStack<uint64_t> st(&dev);
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(st.Push(i).ok());
  EXPECT_EQ(st.size(), 2000u);
  for (uint64_t i = 2000; i-- > 0;) {
    uint64_t v;
    ASSERT_TRUE(st.Pop(&v).ok());
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(st.empty());
  uint64_t v;
  EXPECT_TRUE(st.Pop(&v).IsNotFound());
}

TEST(ExtStack, AmortizedIoPerOpIsOneOverB) {
  MemoryBlockDevice dev(kBlockBytes);
  const size_t kB = kBlockBytes / sizeof(uint64_t);
  const size_t kN = 20000;
  ExtStack<uint64_t> st(&dev);
  IoProbe probe(dev);
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(st.Push(i).ok());
  uint64_t v;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(st.Pop(&v).ok());
  // 2N ops must cost <= ~2N/B block I/Os (with small slack).
  EXPECT_LE(probe.delta().block_ios(), 2 * kN / kB + 4);
}

TEST(ExtStack, InterleavedPushPopAtSpillBoundaryDoesNotThrash) {
  // Adversarial pattern around the spill boundary: with a 2-block buffer
  // the structure must not do one I/O per op.
  MemoryBlockDevice dev(kBlockBytes);
  const size_t kB = kBlockBytes / sizeof(uint64_t);
  ExtStack<uint64_t> st(&dev);
  for (uint64_t i = 0; i < 2 * kB - 1; ++i) ASSERT_TRUE(st.Push(i).ok());
  IoProbe probe(dev);
  for (int t = 0; t < 1000; ++t) {
    ASSERT_TRUE(st.Push(7).ok());
    uint64_t v;
    ASSERT_TRUE(st.Pop(&v).ok());
    EXPECT_EQ(v, 7u);
  }
  EXPECT_LE(probe.delta().block_ios(), 1000 / kB * 2 + 8);
}

TEST(ExtStack, MixedWorkloadAgainstReference) {
  MemoryBlockDevice dev(64);  // tiny blocks: 8 items
  ExtStack<uint32_t> st(&dev);
  std::vector<uint32_t> ref;
  Rng rng(7);
  for (int t = 0; t < 30000; ++t) {
    if (ref.empty() || rng.Uniform(100) < 55) {
      uint32_t v = static_cast<uint32_t>(rng.Next());
      ASSERT_TRUE(st.Push(v).ok());
      ref.push_back(v);
    } else {
      uint32_t v;
      ASSERT_TRUE(st.Pop(&v).ok());
      ASSERT_EQ(v, ref.back());
      ref.pop_back();
    }
    ASSERT_EQ(st.size(), ref.size());
  }
}

// ------------------------------------------------------------------- Queue

TEST(ExtQueue, FifoOrder) {
  MemoryBlockDevice dev(kBlockBytes);
  ExtQueue<uint64_t> q(&dev);
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(q.Push(i).ok());
  for (uint64_t i = 0; i < 2000; ++i) {
    uint64_t v;
    ASSERT_TRUE(q.Pop(&v).ok());
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(q.empty());
  uint64_t v;
  EXPECT_TRUE(q.Pop(&v).IsNotFound());
}

TEST(ExtQueue, AmortizedIoPerOpIsOneOverB) {
  MemoryBlockDevice dev(kBlockBytes);
  const size_t kB = kBlockBytes / sizeof(uint64_t);
  const size_t kN = 20000;
  ExtQueue<uint64_t> q(&dev);
  IoProbe probe(dev);
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(q.Push(i).ok());
  uint64_t v;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(q.Pop(&v).ok());
  EXPECT_LE(probe.delta().block_ios(), 2 * kN / kB + 4);
}

TEST(ExtQueue, MixedWorkloadAgainstReference) {
  MemoryBlockDevice dev(64);
  ExtQueue<uint32_t> q(&dev);
  std::deque<uint32_t> ref;
  Rng rng(11);
  for (int t = 0; t < 30000; ++t) {
    if (ref.empty() || rng.Uniform(100) < 55) {
      uint32_t v = static_cast<uint32_t>(rng.Next());
      ASSERT_TRUE(q.Push(v).ok());
      ref.push_back(v);
    } else {
      uint32_t v;
      ASSERT_TRUE(q.Pop(&v).ok());
      ASSERT_EQ(v, ref.front());
      ref.pop_front();
    }
    ASSERT_EQ(q.size(), ref.size());
  }
}

// Property sweep over block sizes: all three containers round-trip.
class ContainerBlockSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ContainerBlockSweep, VectorStackQueueRoundTrip) {
  const size_t block = GetParam();
  MemoryBlockDevice dev(block);
  const size_t kN = 5000;

  ExtVector<uint32_t> vec(&dev);
  ExtStack<uint32_t> st(&dev);
  ExtQueue<uint32_t> q(&dev);
  ExtVector<uint32_t>::Writer w(&vec);
  for (uint32_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(w.Append(i));
    ASSERT_TRUE(st.Push(i).ok());
    ASSERT_TRUE(q.Push(i).ok());
  }
  ASSERT_TRUE(w.Finish().ok());

  std::vector<uint32_t> got;
  ASSERT_TRUE(vec.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), kN);
  for (uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(got[i], i);
    uint32_t sv, qv;
    ASSERT_TRUE(st.Pop(&sv).ok());
    ASSERT_TRUE(q.Pop(&qv).ok());
    ASSERT_EQ(sv, kN - 1 - i);
    ASSERT_EQ(qv, i);
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, ContainerBlockSweep,
                         ::testing::Values(16, 64, 256, 4096));

}  // namespace
}  // namespace vem
