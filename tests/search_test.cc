// Tests for B+-tree, external priority queue, and buffer tree.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "io/memory_block_device.h"
#include "search/bplus_tree.h"
#include "search/buffer_tree.h"
#include "search/external_pq.h"
#include "util/random.h"

namespace vem {
namespace {

// ---------------------------------------------------------------- BPlusTree

TEST(BPlusTree, InsertGetBasic) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 16);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(i * 2, i).ok());
  }
  EXPECT_EQ(tree.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t v;
    ASSERT_TRUE(tree.Get(i * 2, &v).ok());
    EXPECT_EQ(v, i);
    EXPECT_TRUE(tree.Get(i * 2 + 1, &v).IsNotFound());
  }
}

TEST(BPlusTree, UpsertReplaces) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 16);
  BPlusTree<uint32_t, uint32_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  bool replaced;
  ASSERT_TRUE(tree.Insert(5, 10, &replaced).ok());
  EXPECT_FALSE(replaced);
  ASSERT_TRUE(tree.Insert(5, 20, &replaced).ok());
  EXPECT_TRUE(replaced);
  EXPECT_EQ(tree.size(), 1u);
  uint32_t v;
  ASSERT_TRUE(tree.Get(5, &v).ok());
  EXPECT_EQ(v, 20u);
}

TEST(BPlusTree, HeightIsLogB) {
  MemoryBlockDevice dev(512);
  BufferPool pool(&dev, 32);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  const size_t kN = 50000;
  Rng rng(4);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree.Insert(rng.Next(), i).ok());
  }
  // height <= ceil(log_{cap/2}(N)) + 1.
  double base = static_cast<double>(tree.leaf_capacity()) / 2;
  double bound = std::ceil(std::log(static_cast<double>(kN)) / std::log(base)) + 1;
  EXPECT_LE(tree.height(), static_cast<size_t>(bound));
}

TEST(BPlusTree, PointQueryIoIsHeight) {
  MemoryBlockDevice dev(512);
  // Pool with few frames: a cold lookup costs ~height I/Os, never more.
  BufferPool pool(&dev, 4);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  const size_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  Rng rng(6);
  for (int t = 0; t < 50; ++t) {
    uint64_t key = rng.Uniform(kN);
    IoProbe probe(dev);
    uint64_t v;
    ASSERT_TRUE(tree.Get(key, &v).ok());
    EXPECT_LE(probe.delta().block_reads, tree.height());
  }
}

TEST(BPlusTree, RangeScanInOrder) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 16);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  std::set<uint64_t> keys;
  Rng rng(10);
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.Uniform(100000);
    keys.insert(k);
    ASSERT_TRUE(tree.Insert(k, k * 2).ok());
  }
  uint64_t lo = 20000, hi = 60000;
  std::vector<uint64_t> expect;
  for (uint64_t k : keys) {
    if (k >= lo && k <= hi) expect.push_back(k);
  }
  std::vector<uint64_t> got;
  ASSERT_TRUE(tree.Scan(lo, hi, [&](const uint64_t& k, const uint64_t& v) {
    EXPECT_EQ(v, k * 2);
    got.push_back(k);
    return true;
  }).ok());
  EXPECT_EQ(got, expect);
}

TEST(BPlusTree, ScanEarlyStop) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 16);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  int count = 0;
  ASSERT_TRUE(tree.Scan(0, 999, [&](const uint64_t&, const uint64_t&) {
    return ++count < 10;
  }).ok());
  EXPECT_EQ(count, 10);
}

TEST(BPlusTree, DeleteSimple) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 16);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  bool erased;
  for (uint64_t i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(tree.Delete(i, &erased).ok());
    EXPECT_TRUE(erased);
  }
  ASSERT_TRUE(tree.Delete(0, &erased).ok());
  EXPECT_FALSE(erased);
  EXPECT_EQ(tree.size(), 1000u);
  uint64_t v;
  for (uint64_t i = 0; i < 2000; ++i) {
    Status s = tree.Get(i, &v);
    if (i % 2 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else {
      EXPECT_TRUE(s.ok()) << i;
    }
  }
}

TEST(BPlusTree, DeleteEverythingThenReuse) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 16);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  for (uint64_t i = 0; i < 3000; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  for (uint64_t i = 0; i < 3000; ++i) ASSERT_TRUE(tree.Delete(i).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);  // shrank back to a single leaf
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(i, 7).ok());
  uint64_t v;
  ASSERT_TRUE(tree.Get(50, &v).ok());
  EXPECT_EQ(v, 7u);
}

struct FuzzCase {
  size_t block_bytes;
  size_t ops;
  uint64_t key_space;
};

class BPlusTreeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(BPlusTreeFuzz, MatchesStdMap) {
  const FuzzCase& c = GetParam();
  MemoryBlockDevice dev(c.block_bytes);
  BufferPool pool(&dev, 16);
  BPlusTree<uint64_t, uint64_t> tree(&pool);
  ASSERT_TRUE(tree.Init().ok());
  std::map<uint64_t, uint64_t> ref;
  Rng rng(c.block_bytes * 131 + c.ops);
  for (size_t t = 0; t < c.ops; ++t) {
    uint64_t k = rng.Uniform(c.key_space);
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {  // insert
        uint64_t v = rng.Next();
        ASSERT_TRUE(tree.Insert(k, v).ok());
        ref[k] = v;
        break;
      }
      case 2: {  // delete
        bool erased;
        ASSERT_TRUE(tree.Delete(k, &erased).ok());
        EXPECT_EQ(erased, ref.erase(k) > 0) << "key " << k << " op " << t;
        break;
      }
      case 3: {  // lookup
        uint64_t v;
        Status s = tree.Get(k, &v);
        auto it = ref.find(k);
        if (it == ref.end()) {
          EXPECT_TRUE(s.IsNotFound()) << "key " << k << " op " << t;
        } else {
          ASSERT_TRUE(s.ok()) << "key " << k << " op " << t;
          EXPECT_EQ(v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(tree.size(), ref.size());
  }
  // Full-order check via scan.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  ASSERT_TRUE(tree.Scan(0, ~0ull, [&](const uint64_t& k, const uint64_t& v) {
    scanned.push_back({k, v});
    return true;
  }).ok());
  std::vector<std::pair<uint64_t, uint64_t>> expect(ref.begin(), ref.end());
  EXPECT_EQ(scanned, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BPlusTreeFuzz,
    ::testing::Values(FuzzCase{128, 20000, 500},   // tiny nodes, hot keys
                      FuzzCase{256, 20000, 100000},
                      FuzzCase{512, 10000, 50},    // heavy duplication
                      FuzzCase{4096, 20000, 1000000}));

// ------------------------------------------------------ ExternalPriorityQueue

TEST(ExternalPQ, PushPopSorted) {
  MemoryBlockDevice dev(256);
  ExternalPriorityQueue<uint64_t> pq(&dev, 1024);
  Rng rng(20);
  const size_t kN = 50000;
  std::vector<uint64_t> ref;
  for (size_t i = 0; i < kN; ++i) {
    uint64_t v = rng.Next();
    ref.push_back(v);
    ASSERT_TRUE(pq.Push(v).ok());
  }
  EXPECT_GT(pq.spills(), 0u);   // must actually have gone external
  std::sort(ref.begin(), ref.end());
  for (size_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_TRUE(pq.Pop(&v).ok());
    ASSERT_EQ(v, ref[i]) << "at " << i;
  }
  EXPECT_TRUE(pq.empty());
  uint64_t v;
  EXPECT_TRUE(pq.Pop(&v).IsNotFound());
}

TEST(ExternalPQ, InterleavedMatchesStdPq) {
  MemoryBlockDevice dev(128);
  ExternalPriorityQueue<uint64_t> pq(&dev, 512);
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> ref;
  Rng rng(21);
  for (int t = 0; t < 60000; ++t) {
    if (ref.empty() || rng.Uniform(100) < 60) {
      uint64_t v = rng.Uniform(1 << 20);
      ASSERT_TRUE(pq.Push(v).ok());
      ref.push(v);
    } else {
      uint64_t got, want = ref.top();
      ref.pop();
      ASSERT_TRUE(pq.Pop(&got).ok());
      ASSERT_EQ(got, want) << "op " << t;
    }
    ASSERT_EQ(pq.size(), ref.size());
  }
}

TEST(ExternalPQ, TopDoesNotConsume) {
  MemoryBlockDevice dev(128);
  ExternalPriorityQueue<int> pq(&dev, 512);
  ASSERT_TRUE(pq.Push(5).ok());
  ASSERT_TRUE(pq.Push(3).ok());
  int v;
  ASSERT_TRUE(pq.Top(&v).ok());
  EXPECT_EQ(v, 3);
  EXPECT_EQ(pq.size(), 2u);
  ASSERT_TRUE(pq.Pop(&v).ok());
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(pq.Pop(&v).ok());
  EXPECT_EQ(v, 5);
}

TEST(ExternalPQ, SortViaPqMatchesSortBoundShape) {
  // Sorting N items via PQ must cost O((N/B) * passes), way below N.
  MemoryBlockDevice dev(256);
  const size_t kB = 256 / sizeof(uint64_t);
  const size_t kN = 100000;
  ExternalPriorityQueue<uint64_t> pq(&dev, 16384);
  Rng rng(22);
  IoProbe probe(dev);
  for (size_t i = 0; i < kN; ++i) ASSERT_TRUE(pq.Push(rng.Next()).ok());
  uint64_t prev = 0, v;
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(pq.Pop(&v).ok());
    ASSERT_GE(v, prev);
    prev = v;
  }
  uint64_t ios = probe.delta().block_ios();
  EXPECT_LT(ios, kN / 2);                  // far below 1 I/O per op
  EXPECT_GE(ios, 2 * kN / kB);             // but it did spill everything
}

TEST(ExternalPQ, CustomComparatorMaxHeap) {
  MemoryBlockDevice dev(128);
  ExternalPriorityQueue<int, std::greater<int>> pq(&dev, 512,
                                                   std::greater<int>());
  for (int v : {3, 9, 1, 7}) ASSERT_TRUE(pq.Push(v).ok());
  int out;
  ASSERT_TRUE(pq.Pop(&out).ok());
  EXPECT_EQ(out, 9);
}

// ----------------------------------------------------------------- BufferTree

TEST(BufferTree, InsertExtractSorted) {
  MemoryBlockDevice dev(256);
  BufferTree<uint64_t, uint64_t> tree(&dev, 2048);
  const size_t kN = 30000;
  Rng rng(30);
  std::map<uint64_t, uint64_t> ref;
  for (size_t i = 0; i < kN; ++i) {
    uint64_t k = rng.Uniform(1 << 24);
    ref[k] = i;
    ASSERT_TRUE(tree.Insert(k, i).ok());
  }
  ExtVector<BufferTree<uint64_t, uint64_t>::Pair> out(&dev);
  ASSERT_TRUE(tree.ExtractAll(&out).ok());
  std::vector<BufferTree<uint64_t, uint64_t>::Pair> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), ref.size());
  auto it = ref.begin();
  for (size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].key, it->first);
    ASSERT_EQ(got[i].value, it->second);
  }
}

TEST(BufferTree, DeletesAndUpserts) {
  MemoryBlockDevice dev(256);
  BufferTree<uint64_t, uint64_t> tree(&dev, 2048);
  std::map<uint64_t, uint64_t> ref;
  Rng rng(31);
  for (int t = 0; t < 50000; ++t) {
    uint64_t k = rng.Uniform(5000);
    if (rng.Uniform(3) != 0) {
      uint64_t v = rng.Next();
      ASSERT_TRUE(tree.Insert(k, v).ok());
      ref[k] = v;
    } else {
      ASSERT_TRUE(tree.Delete(k).ok());
      ref.erase(k);
    }
  }
  ExtVector<BufferTree<uint64_t, uint64_t>::Pair> out(&dev);
  ASSERT_TRUE(tree.ExtractAll(&out).ok());
  std::vector<BufferTree<uint64_t, uint64_t>::Pair> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), ref.size());
  auto it = ref.begin();
  for (size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].key, it->first) << i;
    ASSERT_EQ(got[i].value, it->second) << i;
  }
}

TEST(BufferTree, QueryAfterFlush) {
  MemoryBlockDevice dev(256);
  BufferTree<uint64_t, uint64_t> tree(&dev, 2048);
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(i * 3, i).ok());
  }
  uint64_t v;
  bool found;
  ASSERT_TRUE(tree.Query(300, &v, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 100u);
  ASSERT_TRUE(tree.Query(301, &v, &found).ok());
  EXPECT_FALSE(found);
  // Delete then re-query.
  ASSERT_TRUE(tree.Delete(300).ok());
  ASSERT_TRUE(tree.Query(300, &v, &found).ok());
  EXPECT_FALSE(found);
}

TEST(BufferTree, AmortizedInsertIoBeatsBTree) {
  // The survey's headline for buffer trees: N inserts cost ~Sort(N) I/Os,
  // an order of magnitude below N * log_B(N) for one-at-a-time B-tree
  // inserts at the same pool size.
  MemoryBlockDevice dev(1024);  // B = 32 ops / 64 pairs per block
  const size_t kN = 100000;
  const size_t kMem = 32768;  // m = 32 blocks of internal memory

  BufferTree<uint64_t, uint64_t> btree(&dev, kMem);
  Rng rng(33);
  IoProbe probe(dev);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(btree.Insert(rng.Next(), i).ok());
  }
  ASSERT_TRUE(btree.FlushAll().ok());
  uint64_t buffered_ios = probe.delta().block_ios();

  BufferPool pool(&dev, kMem / 1024);
  BPlusTree<uint64_t, uint64_t> ptree(&pool);
  ASSERT_TRUE(ptree.Init().ok());
  Rng rng2(33);
  IoProbe probe2(dev);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(ptree.Insert(rng2.Next(), i).ok());
  }
  uint64_t online_ios = probe2.delta().block_ios();

  EXPECT_LT(buffered_ios * 5, online_ios)
      << "buffered=" << buffered_ios << " online=" << online_ios;
}

TEST(BufferTree, DuplicateKeyLastWriteWins) {
  MemoryBlockDevice dev(256);
  BufferTree<uint32_t, uint32_t> tree(&dev, 1024);
  for (uint32_t round = 0; round < 200; ++round) {
    for (uint32_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(tree.Insert(k, round * 100 + k).ok());
    }
  }
  ExtVector<BufferTree<uint32_t, uint32_t>::Pair> out(&dev);
  ASSERT_TRUE(tree.ExtractAll(&out).ok());
  std::vector<BufferTree<uint32_t, uint32_t>::Pair> got;
  ASSERT_TRUE(out.ReadAll(&got).ok());
  ASSERT_EQ(got.size(), 50u);
  for (uint32_t k = 0; k < 50; ++k) {
    EXPECT_EQ(got[k].key, k);
    EXPECT_EQ(got[k].value, 199u * 100 + k);
  }
}

}  // namespace
}  // namespace vem
