// Tests for extendible hashing.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "io/memory_block_device.h"
#include "search/ext_hash_table.h"
#include "util/random.h"

namespace vem {
namespace {

TEST(ExtHashTable, InsertGetDelete) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 16);
  ExtHashTable<uint64_t, uint64_t> table(&pool);
  ASSERT_TRUE(table.Init().ok());
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(table.Insert(i, i * 2).ok());
  }
  EXPECT_EQ(table.size(), 5000u);
  EXPECT_GT(table.global_depth(), 4u);  // directory actually grew
  uint64_t v;
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(table.Get(i, &v).ok()) << i;
    EXPECT_EQ(v, i * 2);
  }
  EXPECT_TRUE(table.Get(999999, &v).IsNotFound());
  bool erased;
  for (uint64_t i = 0; i < 5000; i += 2) {
    ASSERT_TRUE(table.Delete(i, &erased).ok());
    EXPECT_TRUE(erased);
  }
  ASSERT_TRUE(table.Delete(0, &erased).ok());
  EXPECT_FALSE(erased);
  EXPECT_EQ(table.size(), 2500u);
  for (uint64_t i = 0; i < 5000; ++i) {
    Status s = table.Get(i, &v);
    if (i % 2 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else {
      EXPECT_TRUE(s.ok()) << i;
    }
  }
}

TEST(ExtHashTable, UpsertReplaces) {
  MemoryBlockDevice dev(256);
  BufferPool pool(&dev, 8);
  ExtHashTable<uint32_t, uint32_t> table(&pool);
  ASSERT_TRUE(table.Init().ok());
  bool replaced;
  ASSERT_TRUE(table.Insert(7, 1, &replaced).ok());
  EXPECT_FALSE(replaced);
  ASSERT_TRUE(table.Insert(7, 2, &replaced).ok());
  EXPECT_TRUE(replaced);
  EXPECT_EQ(table.size(), 1u);
  uint32_t v;
  ASSERT_TRUE(table.Get(7, &v).ok());
  EXPECT_EQ(v, 2u);
}

TEST(ExtHashTable, LookupIsOneRead) {
  MemoryBlockDevice dev(512);
  BufferPool pool(&dev, 4);  // tiny pool: every lookup is cold
  ExtHashTable<uint64_t, uint64_t> table(&pool);
  ASSERT_TRUE(table.Init().ok());
  const size_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(table.Insert(i, i).ok());
  Rng rng(1);
  const int kQ = 200;
  IoProbe probe(dev);
  for (int q = 0; q < kQ; ++q) {
    uint64_t v;
    ASSERT_TRUE(table.Get(rng.Uniform(kN), &v).ok());
  }
  // Exactly one bucket read per query (amortized; the pool may hold a
  // couple of hot buckets, so allow <=).
  EXPECT_LE(probe.delta().block_reads, static_cast<uint64_t>(kQ));
  EXPECT_GE(probe.delta().block_reads, static_cast<uint64_t>(kQ) / 2);
}

struct HashFuzzCase {
  size_t block;
  size_t ops;
  uint64_t key_space;
};

class ExtHashFuzz : public ::testing::TestWithParam<HashFuzzCase> {};

TEST_P(ExtHashFuzz, MatchesStdMap) {
  const HashFuzzCase& c = GetParam();
  MemoryBlockDevice dev(c.block);
  BufferPool pool(&dev, 16);
  ExtHashTable<uint64_t, uint64_t> table(&pool);
  ASSERT_TRUE(table.Init().ok());
  std::map<uint64_t, uint64_t> ref;
  Rng rng(c.block * 7 + c.ops);
  for (size_t t = 0; t < c.ops; ++t) {
    uint64_t k = rng.Uniform(c.key_space);
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {
        uint64_t v = rng.Next();
        ASSERT_TRUE(table.Insert(k, v).ok());
        ref[k] = v;
        break;
      }
      case 2: {
        bool erased;
        ASSERT_TRUE(table.Delete(k, &erased).ok());
        EXPECT_EQ(erased, ref.erase(k) > 0) << "op " << t;
        break;
      }
      case 3: {
        uint64_t v;
        Status s = table.Get(k, &v);
        auto it = ref.find(k);
        if (it == ref.end()) {
          EXPECT_TRUE(s.IsNotFound()) << "op " << t;
        } else {
          ASSERT_TRUE(s.ok()) << "op " << t;
          EXPECT_EQ(v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(table.size(), ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExtHashFuzz,
    ::testing::Values(HashFuzzCase{128, 20000, 300},     // tiny buckets, hot keys
                      HashFuzzCase{256, 20000, 100000},  // mostly distinct
                      HashFuzzCase{4096, 10000, 5000}));

TEST(ExtHashTable, SkewedKeysStillSplit) {
  // Sequential keys hash-scatter; the directory should stay shallow
  // relative to a pathological chain.
  MemoryBlockDevice dev(4096);
  BufferPool pool(&dev, 16);
  ExtHashTable<uint64_t, uint64_t> table(&pool);
  ASSERT_TRUE(table.Init().ok());
  for (uint64_t i = 0; i < 100000; ++i) {
    ASSERT_TRUE(table.Insert(i * 4096, i).ok());  // stride-aligned keys
  }
  uint64_t v;
  ASSERT_TRUE(table.Get(50000 * 4096, &v).ok());
  EXPECT_EQ(v, 50000u);
  // Directory depth ~ log2(N / bucket_cap) + small slack.
  double ideal = std::log2(100000.0 / table.bucket_capacity());
  EXPECT_LE(table.global_depth(), static_cast<size_t>(ideal) + 4);
}

}  // namespace
}  // namespace vem
