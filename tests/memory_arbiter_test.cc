// MemoryArbiter unit tests: the lease policy pinned under a fake clock —
// grow and shed in both directions, pinned-floor respect, budget
// conservation (pool + staging charges never exceed M) — plus the
// system-level contract: IoStats stay bit-identical with the arbiter
// enabled, on a scan layer (governed streams) and on a pool-backed
// structure (B+-tree through the lease-backed, ghost-charged pool).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ext_vector.h"
#include "io/memory_arbiter.h"
#include "io/memory_block_device.h"
#include "search/bplus_tree.h"
#include "serve/execution_context.h"
#include "util/options.h"
#include "util/random.h"

namespace vem {
namespace {

/// Deterministic clock: tests advance it by hand.
struct FakeClock {
  std::atomic<uint64_t> now_ns{0};
  MemoryArbiter::Clock fn() {
    return [this] { return now_ns.load(); };
  }
};

MemoryArbiter::Config TestConfig() {
  MemoryArbiter::Config cfg;
  cfg.budget_bytes = 64 * 4096;  // 64 blocks
  cfg.block_size = 4096;
  cfg.min_pool_frames = 4;
  cfg.min_staging_blocks = 4;
  cfg.step_blocks = 8;
  cfg.window_accesses = 4;
  return cfg;
}

TEST(MemoryArbiter, LeasesAreClampedToOneBudget) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  EXPECT_EQ(arb.total_blocks(), 64u);
  auto pool = arb.LeasePool(40);
  EXPECT_EQ(pool->target_frames(), 40u);
  // Only 24 blocks remain for staging: the grant is clamped, never over.
  auto staging = arb.LeaseStaging(40);
  EXPECT_EQ(staging->target_blocks(), 24u);
  EXPECT_EQ(arb.charged_blocks(), 64u);
  EXPECT_EQ(arb.free_blocks(), 0u);
  // Dropping a lease returns its charge.
  pool.reset();
  EXPECT_EQ(arb.charged_blocks(), 24u);
}

TEST(MemoryArbiter, PoolGrowsOnMissEvidenceFromFreeHeadroom) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto pool = arb.LeasePool(16);  // 48 blocks free
  // A miss-heavy window: the working set does not fit, grow one step.
  size_t target = pool->ReportWindow(/*hits=*/0, /*misses=*/8, /*cold=*/0,
                                     /*pinned=*/0, /*actual=*/16);
  EXPECT_EQ(target, 24u);
  EXPECT_EQ(arb.pool_grows(), 1u);
  EXPECT_EQ(arb.charged_blocks(), 24u);
  // Hit-only windows decay the miss EWMA below the grow floor: growth
  // stops (the EWMA needs a few windows to wash out).
  size_t actual = target;
  for (int i = 0; i < 4; ++i) {
    actual = pool->ReportWindow(8, 0, 0, 0, actual);
  }
  size_t settled = actual;
  for (int i = 0; i < 4; ++i) {
    actual = pool->ReportWindow(8, 0, 0, 0, actual);
  }
  EXPECT_EQ(actual, settled);
  EXPECT_LE(arb.charged_blocks(), arb.total_blocks());
}

TEST(MemoryArbiter, StarvedPoolReclaimsWastefulStaging) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto pool = arb.LeasePool(16);
  auto staging = arb.LeaseStaging(48);  // M fully charged
  EXPECT_EQ(arb.free_blocks(), 0u);
  // Staging admits to throwing most of its windows away.
  staging->ReportUsage(/*staged=*/48, /*waste=*/0.8, /*stall=*/0.0);
  // Pool wants growth, no headroom: denied, and the wasteful staging
  // target is squeezed one step.
  size_t target = pool->ReportWindow(0, 8, 0, 0, 16);
  EXPECT_EQ(target, 16u);  // nothing free yet
  EXPECT_EQ(arb.denied_grows(), 1u);
  EXPECT_EQ(arb.staging_sheds(), 1u);
  EXPECT_EQ(staging->target_blocks(), 40u);
  // The governor sheds and reports: the charge follows the staging
  // actually held (one step per denied grow — the landed revocation
  // cleared the pressure, so no second step fires here).
  staging->ReportUsage(36, 0.8, 0.0);
  EXPECT_EQ(staging->target_blocks(), 40u);
  EXPECT_LE(arb.charged_blocks(), 64u);
  // With headroom freed, the pool's next miss-heavy window grows.
  target = pool->ReportWindow(0, 8, 0, 0, 16);
  EXPECT_EQ(target, 24u);
  EXPECT_EQ(arb.pool_grows(), 1u);
  EXPECT_LE(arb.charged_blocks(), 64u);
}

TEST(MemoryArbiter, StarvedStagingReclaimsColdPoolFrames) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto pool = arb.LeasePool(56);
  auto staging = arb.LeaseStaging(8);  // M fully charged
  // The pool reports it is mostly cold (valid unreferenced frames).
  pool->ReportWindow(/*hits=*/8, /*misses=*/0, /*cold=*/40, /*pinned=*/0,
                     /*actual=*/56);
  // Staging stalls and wants more: denied now, but the cold pool is
  // marked down one step.
  EXPECT_EQ(staging->RequestGrow(16), 0u);
  EXPECT_EQ(arb.pool_sheds(), 1u);
  EXPECT_EQ(pool->target_frames(), 48u);
  // The pool applies the lowered target at its next window and
  // confirms, freeing one step of headroom (the landed revocation
  // cleared the pressure — one step per denied grow).
  size_t target = pool->ReportWindow(8, 0, 40, 0, 56);
  EXPECT_EQ(target, 48u);
  pool->ConfirmFrames(48);
  EXPECT_LE(arb.charged_blocks(), 64u);
  // The stalled scans get that step immediately; the unmet remainder
  // of the request revokes the next step for the following period.
  EXPECT_EQ(staging->RequestGrow(16), 8u);
  EXPECT_EQ(staging->target_blocks(), 16u);
  EXPECT_EQ(pool->target_frames(), 40u);
  EXPECT_LE(arb.charged_blocks(), 64u);
}

TEST(MemoryArbiter, PinnedFloorIsNeverCrossed) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto pool = arb.LeasePool(16);
  auto staging = arb.LeaseStaging(48);
  // The pool is mostly cold, but 6 of its 16 frames are pinned: staging
  // pressure may revoke down to the pinned set and not one frame past.
  pool->ReportWindow(8, 0, /*cold=*/10, /*pinned=*/6, 16);
  EXPECT_EQ(staging->RequestGrow(8), 0u);
  EXPECT_EQ(pool->target_frames(), 8u);  // one 8-block step
  EXPECT_EQ(staging->RequestGrow(8), 0u);
  EXPECT_EQ(pool->target_frames(), 6u);  // clamped at the pins
  EXPECT_EQ(staging->RequestGrow(8), 0u);
  EXPECT_EQ(pool->target_frames(), 6u);  // floor holds
}

TEST(MemoryArbiter, RevocationsAreRateLimitedByTheClock) {
  FakeClock clk;
  auto cfg = TestConfig();
  cfg.min_revoke_gap_ns = 1000;
  MemoryArbiter arb(cfg, clk.fn());
  clk.now_ns = 10000;  // move past the initial window
  auto pool = arb.LeasePool(56);
  auto staging = arb.LeaseStaging(8);
  pool->ReportWindow(8, 0, 40, 0, 56);
  EXPECT_EQ(staging->RequestGrow(8), 0u);
  EXPECT_EQ(arb.pool_sheds(), 1u);
  // Same instant: the second revocation is suppressed.
  EXPECT_EQ(staging->RequestGrow(8), 0u);
  EXPECT_EQ(arb.pool_sheds(), 1u);
  // Past the gap it fires again.
  clk.now_ns += 2000;
  EXPECT_EQ(staging->RequestGrow(8), 0u);
  EXPECT_EQ(arb.pool_sheds(), 2u);
}

TEST(MemoryArbiter, RevokeThenGrowDoesNotLeakBudget) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto pool = arb.LeasePool(16);
  {
    auto staging = arb.LeaseStaging(48);  // M fully charged
    pool->ReportWindow(8, 0, /*cold=*/12, 0, 16);
    EXPECT_EQ(staging->RequestGrow(4), 0u);  // denied; revokes the pool
    EXPECT_EQ(pool->target_frames(), 8u);
  }  // staging lease released: 48 blocks free again
  // The pool never shed (still holds and is charged for 16 frames), so
  // growing the target back is an un-revoke: no fresh charge may be
  // drawn, and the global ledger must stay equal to the lease charges —
  // the regression was charged_blocks_ absorbing a grant the lease
  // charge never reflected, leaking budget on every revoke/grow cycle.
  size_t target = pool->ReportWindow(0, /*misses=*/8, 0, 0, 16);
  EXPECT_EQ(target, 16u);
  EXPECT_EQ(arb.charged_blocks(), 16u);
  pool.reset();
  EXPECT_EQ(arb.charged_blocks(), 0u);
  EXPECT_EQ(arb.free_blocks(), arb.total_blocks());
}

TEST(MemoryArbiter, BudgetConservationHoldsUnderChurn) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto pool = arb.LeasePool(24);
  auto staging = arb.LeaseStaging(24);
  Rng rng(7);
  size_t actual = 24;
  for (int step = 0; step < 200; ++step) {
    clk.now_ns += 100;
    switch (rng.Uniform(4)) {
      case 0: {
        size_t misses = rng.Uniform(8);
        size_t target = pool->ReportWindow(8 - misses, misses,
                                           rng.Uniform(actual), 0, actual);
        actual = target;  // the pool applies targets promptly here
        pool->ConfirmFrames(actual);
        break;
      }
      case 1:
        staging->RequestGrow(rng.Uniform(16));
        break;
      case 2:
        staging->ReportUsage(rng.Uniform(32),
                             double(rng.Uniform(100)) / 100.0,
                             double(rng.Uniform(100)) / 100.0);
        break;
      case 3:
        pool->ConfirmFrames(actual);
        break;
    }
    // The one invariant arbitration must never break.
    ASSERT_LE(arb.charged_blocks(), arb.total_blocks());
    ASSERT_GE(pool->target_frames(), 1u);
  }
}

// ------------------------------------------------------- multi-tenant plane

TEST(MemoryArbiterTenants, RegistrationRefusesOversubscribedFloors) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto a = arb.RegisterTenant("a", 1.0, 40);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arb.floor_reserved_blocks(), 40u);
  // 40 + 40 > 64: the guarantee cannot be honored, so it is refused.
  auto b = arb.RegisterTenant("b", 1.0, 40);
  EXPECT_EQ(b, nullptr);
  EXPECT_EQ(arb.floor_reserved_blocks(), 40u);
  // Dropping the handle releases the reservation.
  a.reset();
  EXPECT_EQ(arb.floor_reserved_blocks(), 0u);
  auto c = arb.RegisterTenant("c", 1.0, 40);
  EXPECT_NE(c, nullptr);
}

/// The victim-ordering fix: reclaim takes from the tenant furthest OVER
/// its proportional share, not from whoever happens to sit first in the
/// lease list — a late-arriving tenant below its share keeps its memory
/// while the over-share incumbent is squeezed.
TEST(MemoryArbiterTenants, ReclaimFollowsProportionalShareDeficit) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto ta = arb.RegisterTenant("incumbent");  // fair share: 32 each
  auto tb = arb.RegisterTenant("latecomer");
  auto staging_a = arb.LeaseStaging(40, ta.get());  // 8 over share
  auto staging_b = arb.LeaseStaging(16, tb.get());  // 16 under share
  auto pool_b = arb.LeasePool(8, tb.get());         // M fully charged
  ASSERT_EQ(arb.charged_blocks(), 64u);
  // BOTH stagings confess equal waste; only the deficit ordering can
  // tell them apart.
  staging_a->ReportUsage(40, /*waste=*/0.8, /*stall=*/0.0);
  staging_b->ReportUsage(16, /*waste=*/0.8, /*stall=*/0.0);
  // The latecomer's pool is starved: denied grow, revoke one step — from
  // the over-share incumbent, never from the under-share latecomer.
  pool_b->ReportWindow(0, 8, 0, 0, 8);
  EXPECT_EQ(arb.staging_sheds(), 1u);
  EXPECT_EQ(staging_a->target_blocks(), 32u);
  EXPECT_EQ(staging_b->target_blocks(), 16u);
}

TEST(MemoryArbiterTenants, FloorIsNeverCrossedByReclaim) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());
  auto ta = arb.RegisterTenant("a");
  auto tb = arb.RegisterTenant("b", 1.0, /*min_floor_blocks=*/16);
  auto staging_b = arb.LeaseStaging(16, tb.get());  // exactly at its floor
  auto staging_a = arb.LeaseStaging(8, ta.get());
  auto pool_a = arb.LeasePool(40, ta.get());  // M fully charged
  // b is wasteful AND over nothing — but it sits at its guaranteed
  // floor, so reclaim must take from a's own staging instead.
  staging_b->ReportUsage(16, 0.9, 0.0);
  staging_a->ReportUsage(8, 0.9, 0.0);
  pool_a->ReportWindow(0, 8, 0, 0, 40);
  EXPECT_EQ(staging_b->target_blocks(), 16u);  // floor held
  EXPECT_LT(staging_a->target_blocks(), 8u);   // the floorless side paid
}

/// Revocation rate limiting is per tenant: one thrashing tenant spending
/// its budget does not freeze reclaim against a different tenant.
TEST(MemoryArbiterTenants, RevocationRateLimitIsPerTenant) {
  FakeClock clk;
  auto cfg = TestConfig();
  cfg.min_revoke_gap_ns = 1000;
  MemoryArbiter arb(cfg, clk.fn());
  clk.now_ns = 10000;
  auto ta = arb.RegisterTenant("a");
  auto tb = arb.RegisterTenant("b");
  auto staging_a = arb.LeaseStaging(28, ta.get());
  auto staging_b = arb.LeaseStaging(28, tb.get());
  auto pool = arb.LeasePool(8);  // default tenant; M fully charged
  staging_a->ReportUsage(28, 0.9, 0.0);
  staging_b->ReportUsage(28, 0.9, 0.0);
  // First denied grow revokes from one tenant; the second, at the SAME
  // instant, revokes from the OTHER — its own limiter is untouched.
  pool->ReportWindow(0, 8, 0, 0, 8);
  EXPECT_EQ(arb.staging_sheds(), 1u);
  pool->ReportWindow(0, 8, 0, 0, 8);
  EXPECT_EQ(arb.staging_sheds(), 2u);
  size_t a_cut = 28u - staging_a->target_blocks();
  size_t b_cut = 28u - staging_b->target_blocks();
  EXPECT_EQ(a_cut, 8u);
  EXPECT_EQ(b_cut, 8u);
  // Both limiters now armed: a third revocation at this instant is
  // suppressed until the gap passes.
  pool->ReportWindow(0, 8, 0, 0, 8);
  EXPECT_EQ(arb.staging_sheds(), 2u);
  clk.now_ns += 2000;
  pool->ReportWindow(0, 8, 0, 0, 8);
  EXPECT_EQ(arb.staging_sheds(), 3u);
}

// ------------------------------------------- governor lease renegotiation

TEST(MemoryArbiter, GovernorRenegotiatesItsStagingLease) {
  FakeClock clk;
  MemoryArbiter arb(TestConfig(), clk.fn());

  PrefetchGovernor::Config gcfg;
  gcfg.budget_blocks = 16;
  gcfg.min_depth = 2;
  gcfg.max_depth = 16;
  gcfg.initial_depth = 16;
  gcfg.adapt_windows = 4;
  gcfg.stall_floor_ns = 1000;
  PrefetchGovernor gov(gcfg, clk.fn());
  gov.AttachArbiter(&arb);
  EXPECT_EQ(gov.budget_blocks(), 16u);
  EXPECT_EQ(arb.charged_blocks(), 16u);

  auto lease = gov.Arm(8);
  ASSERT_EQ(lease->depth(), 8u);  // stages 16 = the whole current budget
  // Stalled periods want depth 16, which the 16-block budget cannot
  // hold: the governor renegotiates and the arbiter grants from free M.
  for (int w = 0; w < 4; ++w) {
    uint64_t t0 = lease->BeginWait();
    clk.now_ns += 5000;
    lease->EndWait(t0);
    lease->ReportWindow(8, 0);
  }
  EXPECT_EQ(lease->depth(), 16u);
  EXPECT_EQ(gov.budget_blocks(), 32u);
  EXPECT_EQ(arb.staging_grows(), 1u);
  EXPECT_LE(arb.charged_blocks(), arb.total_blocks());

  // Revocation: the arbiter lowers the target; the governor adopts it at
  // the next decision boundary and pressure-sheds the oversized lease.
  auto cut = [&] {
    // Pool pressure + idle staging: squeeze one step per usage report.
    auto pool = arb.LeasePool(32);
    pool->ReportWindow(0, 8, 0, 0, 32);  // miss-heavy, no headroom
  };
  cut();
  size_t lowered = gov.budget_blocks();
  for (int w = 0; w < 4; ++w) lease->ReportWindow(16, 0);
  EXPECT_LE(gov.budget_blocks(), lowered);
}

// --------------------------------------------------- stats identity (PDM)

Options ArbiterOptions() {
  Options opts;
  opts.block_size = 4096;
  opts.memory_budget = 64 * 4096;
  opts.arbiter_window_accesses = 8;
  return opts;
}

/// Scan layer: an armed, governed stream whose staging budget is an
/// arbiter lease must charge exactly what the synchronous scan charges.
TEST(MemoryArbiterIdentity, GovernedScanMatchesSynchronousStats) {
  const size_t kItems = 64 * (4096 / sizeof(uint64_t));  // 64 blocks
  auto fill = [&](ExtVector<uint64_t>* vec, size_t depth) {
    typename ExtVector<uint64_t>::Writer w(vec, static_cast<int>(depth));
    Rng rng(11);
    for (size_t i = 0; i < kItems; ++i) {
      if (!w.Append(rng.Next())) return w.status();
    }
    return w.Finish();
  };
  // Synchronous baseline.
  MemoryBlockDevice sync_dev(4096);
  ExtVector<uint64_t> sync_vec(&sync_dev);
  ASSERT_TRUE(fill(&sync_vec, 0).ok());
  std::vector<uint64_t> sync_out;
  ASSERT_TRUE(sync_vec.ReadAll(&sync_out, 0).ok());
  // Arbitrated: governor attached by the bundle, streams lease depth.
  MemoryBlockDevice arb_dev(4096);
  ArbitratedMemory mem(&arb_dev, ArbiterOptions());
  ExtVector<uint64_t> arb_vec(&arb_dev);
  arb_vec.set_prefetch_depth(8);
  ASSERT_TRUE(fill(&arb_vec, 8).ok());
  std::vector<uint64_t> arb_out;
  ASSERT_TRUE(arb_vec.ReadAll(&arb_out, 8).ok());
  EXPECT_EQ(arb_out, sync_out);
  EXPECT_EQ(sync_dev.stats(), arb_dev.stats());
}

/// Pool-backed structure: a B+-tree through the arbitrated (resizable,
/// ghost-charged) pool must charge exactly what the fixed pool charges,
/// for builds, probes and flushes.
TEST(MemoryArbiterIdentity, BPlusTreeMatchesFixedPoolStats) {
  Options opts = ArbiterOptions();
  const size_t kBaselineFrames = 32;  // == the bundle's pool share of M
  const size_t kKeys = 20000;
  auto run = [&](bool arbitrated) {
    MemoryBlockDevice dev(4096);
    std::unique_ptr<ArbitratedMemory> mem;
    std::unique_ptr<BufferPool> fixed;
    BufferPool* pool;
    if (arbitrated) {
      mem = std::make_unique<ArbitratedMemory>(&dev, opts);
      pool = mem->pool();
      EXPECT_EQ(pool->baseline_frames(), kBaselineFrames);
    } else {
      fixed = std::make_unique<BufferPool>(&dev, kBaselineFrames);
      pool = fixed.get();
    }
    BPlusTree<uint64_t, uint64_t> tree(pool);
    EXPECT_TRUE(tree.Init().ok());
    Rng rng(23);
    for (size_t i = 0; i < kKeys; ++i) {
      EXPECT_TRUE(tree.Insert(rng.Next(), i).ok());
    }
    Rng probe(29);
    uint64_t v;
    for (size_t i = 0; i < 4000; ++i) {
      (void)tree.Get(probe.Next(), &v);  // mostly NotFound: fine
    }
    EXPECT_TRUE(pool->FlushAll().ok());
    return dev.stats();
  };
  IoStats fixed = run(false);
  IoStats arbitrated = run(true);
  EXPECT_EQ(fixed, arbitrated);
}

/// The serving-plane contract (run under TSan in CI): two tenants
/// hammering ONE shared arbiter concurrently charge exactly the logical
/// IoStats each charges when it runs alone on its own slice. One thread
/// per tenant serializes each tenant's own op sequence, so its ghost
/// charging is deterministic no matter who else shares the machine;
/// arbitration may move physical frames between tenants mid-run, but
/// never a single logical charge.
TEST(MemoryArbiterIdentity, MultiTenantStatsMatchSingleTenantRuns) {
  Options opts = ArbiterOptions();  // each tenant's 64-block slice
  const size_t kKeys = 6000;
  const size_t kScanItems = 16 * (4096 / sizeof(uint64_t));
  auto run_tenant = [&](ExecutionContext* ctx, uint64_t seed) {
    BPlusTree<uint64_t, uint64_t> tree(ctx);
    EXPECT_TRUE(tree.Init().ok());
    Rng rng(seed);
    for (size_t i = 0; i < kKeys; ++i) {
      EXPECT_TRUE(tree.Insert(rng.Next(), i).ok());
    }
    Rng probe(seed + 1);
    uint64_t v;
    for (size_t i = 0; i < 2000; ++i) {
      (void)tree.Get(probe.Next(), &v);
    }
    EXPECT_TRUE(ctx->pool()->FlushAll().ok());
    // A governed scan through the same context's staging side.
    ExtVector<uint64_t> vec(ctx->device());
    vec.set_prefetch_depth(4);
    typename ExtVector<uint64_t>::Writer w(&vec, 4);
    Rng fill(seed + 2);
    for (size_t i = 0; i < kScanItems; ++i) {
      if (!w.Append(fill.Next())) break;
    }
    EXPECT_TRUE(w.Finish().ok());
    std::vector<uint64_t> out;
    EXPECT_TRUE(vec.ReadAll(&out, 4).ok());
  };
  // Baselines: each tenant alone, standalone context over its slice.
  IoStats base[2];
  for (int t = 0; t < 2; ++t) {
    MemoryBlockDevice dev(4096);
    ExecutionContext ctx(&dev, opts);
    run_tenant(&ctx, 101 + uint64_t(t) * 17);
    base[t] = dev.stats();
  }
  // Shared machine: one arbiter over 2x the memory, both tenants live.
  MemoryArbiter::Config mcfg;
  mcfg.budget_bytes = 2 * opts.memory_budget;
  mcfg.block_size = opts.block_size;
  mcfg.window_accesses = 8;
  MemoryArbiter machine(mcfg);
  MemoryBlockDevice dev0(4096), dev1(4096);
  MemoryBlockDevice* devs[2] = {&dev0, &dev1};
  std::unique_ptr<ExecutionContext> ctxs[2];
  for (int t = 0; t < 2; ++t) {
    auto tenant =
        machine.RegisterTenant("tenant" + std::to_string(t), 1.0, 8);
    ASSERT_NE(tenant, nullptr);
    ctxs[t] = std::make_unique<ExecutionContext>(devs[t], opts, &machine,
                                                 std::move(tenant));
  }
  std::thread t0([&] { run_tenant(ctxs[0].get(), 101); });
  std::thread t1([&] { run_tenant(ctxs[1].get(), 101 + 17); });
  t0.join();
  t1.join();
  EXPECT_LE(machine.charged_blocks(), machine.total_blocks());
  EXPECT_EQ(devs[0]->stats(), base[0]);
  EXPECT_EQ(devs[1]->stats(), base[1]);
}

}  // namespace
}  // namespace vem
